// External test package: exercises a Plan the way fleet callers do,
// through real provers built by internal/core. (core imports attestation,
// so these tests cannot live in the internal test package.)
package attestation_test

import (
	"fmt"
	"sync"
	"testing"

	"sacha/internal/attestation"
	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
)

var runKey = prover.RegisterKey{3, 1, 4, 1, 5}

// newProver boots one TinyLX device of the fleet class the tests' shared
// plan targets (same boot memory, same key).
func newProver(t testing.TB, geo *device.Geometry) channel.Endpoint {
	t.Helper()
	dev, err := prover.New(prover.Config{
		Geo:     geo,
		BootMem: core.BuildBootMem(geo, 0xD00D),
		Key:     runKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.PowerOn(); err != nil {
		t.Fatal(err)
	}
	vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
	go dev.Serve(prvEP)
	t.Cleanup(func() { vrfEP.Close() })
	return vrfEP
}

func buildPlan(t testing.TB, appSteps uint32) *attestation.Plan {
	t.Helper()
	geo := device.TinyLX()
	golden, dyn, err := core.BuildGolden(geo, netlist.Blinker(8), 0xD00D, 0xCAFEBABE)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := attestation.NewPlan(attestation.Spec{
		Geo: geo, Golden: golden, DynFrames: dyn, AppSteps: appSteps,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestSharedPlanConcurrentRuns is the fleet contract: one immutable Plan,
// many simultaneous per-device Runs. Run under -race this pins the
// concurrency-safety claim, not just the verdicts.
func TestSharedPlanConcurrentRuns(t *testing.T) {
	plan := buildPlan(t, 0)
	const fleet = 8
	reports := make([]*attestation.Report, fleet)
	errs := make([]error, fleet)
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		ep := newProver(t, plan.Geo())
		wg.Add(1)
		go func(i int, ep channel.Endpoint) {
			defer wg.Done()
			var key [16]byte = runKey
			reports[i], errs[i] = plan.Run(ep, attestation.RunOpts{Key: key})
		}(i, ep)
	}
	wg.Wait()
	for i := 0; i < fleet; i++ {
		if errs[i] != nil {
			t.Fatalf("device %d: %v", i, errs[i])
		}
		if !reports[i].Accepted {
			t.Fatalf("device %d rejected: %+v", i, reports[i])
		}
		if reports[i].FramesRead != plan.NumFrames() {
			t.Fatalf("device %d read %d frames, want %d", i, reports[i].FramesRead, plan.NumFrames())
		}
	}
}

// TestCapturePredictionDeterminism: a CAPTURE plan computes its post-step
// prediction exactly once at build; repeated Runs must keep accepting
// fresh honest devices — the prediction is state, not a per-run side
// effect that could drift.
func TestCapturePredictionDeterminism(t *testing.T) {
	plan := buildPlan(t, 9)
	if plan.AppSteps() != 9 {
		t.Fatalf("plan AppSteps %d", plan.AppSteps())
	}
	for round := 0; round < 3; round++ {
		ep := newProver(t, plan.Geo())
		var key [16]byte = runKey
		rep, err := plan.Run(ep, attestation.RunOpts{Key: key})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !rep.Accepted {
			t.Fatalf("round %d rejected: %+v", round, rep)
		}
	}
}

// TestSharedCapturePlanConcurrentRuns combines both: the CAPTURE
// prediction shared read-only across simultaneous Runs.
func TestSharedCapturePlanConcurrentRuns(t *testing.T) {
	plan := buildPlan(t, 5)
	const fleet = 4
	var wg sync.WaitGroup
	errCh := make(chan error, fleet)
	for i := 0; i < fleet; i++ {
		ep := newProver(t, plan.Geo())
		wg.Add(1)
		go func(ep channel.Endpoint) {
			defer wg.Done()
			var key [16]byte = runKey
			rep, err := plan.Run(ep, attestation.RunOpts{Key: key})
			if err != nil {
				errCh <- err
				return
			}
			if !rep.Accepted {
				errCh <- fmt.Errorf("run rejected: %+v", rep)
			}
		}(ep)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent CAPTURE run: %v", err)
	}
}

func TestRunSignatureModeRequiresVerifier(t *testing.T) {
	geo := device.TinyLX()
	golden, dyn, err := core.BuildGolden(geo, netlist.Blinker(8), 0xD00D, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := attestation.NewPlan(attestation.Spec{
		Geo: geo, Golden: golden, DynFrames: dyn, SignatureMode: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep := newProver(t, geo)
	if _, err := plan.Run(ep, attestation.RunOpts{}); err == nil {
		t.Fatal("signature-mode run without a public key accepted")
	}
}
