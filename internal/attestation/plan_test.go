package attestation

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"sacha/internal/device"
	"sacha/internal/fabric"
)

func TestReadbackOrderOffset(t *testing.T) {
	n := 112
	order, err := readbackOrder(n, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("order length %d", len(order))
	}
	if order[0] != 5 || order[n-1] != 4 {
		t.Fatalf("order endpoints %d..%d", order[0], order[n-1])
	}
	seen := make([]bool, n)
	for _, idx := range order {
		if seen[idx] {
			t.Fatalf("frame %d visited twice", idx)
		}
		seen[idx] = true
	}
	// Negative offsets wrap too.
	if order, _ = readbackOrder(n, -1, nil); order[0] != n-1 {
		t.Fatalf("negative offset start %d", order[0])
	}
	// Offsets beyond n wrap.
	if order, _ = readbackOrder(n, n+3, nil); order[0] != 3 {
		t.Fatalf("wrapped offset start %d", order[0])
	}
}

func TestReadbackOrderBijectionEnforced(t *testing.T) {
	full := func(n int) []int {
		p := make([]int, n)
		for i := range p {
			p[i] = i
		}
		return p
	}
	cases := []struct {
		name    string
		perm    []int
		wantSub string
	}{
		{"short", []int{0, 1, 2}, "covers 3 of"},
		{"duplicate", func() []int { p := full(10); p[7] = 3; return p }(), "twice"},
		{"negative", func() []int { p := full(10); p[0] = -1; return p }(), "out of range"},
		{"beyond", func() []int { p := full(10); p[9] = 10; return p }(), "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := readbackOrder(10, 0, tc.perm)
			if err == nil {
				t.Fatal("non-bijective permutation accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q missing %q", err, tc.wantSub)
			}
		})
	}
	// A shuffled full permutation is accepted and passed through intact.
	perm := rand.New(rand.NewSource(1)).Perm(10)
	order, err := readbackOrder(10, 99, perm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range perm {
		if order[i] != perm[i] {
			t.Fatal("valid permutation altered")
		}
	}
}

func TestNewPlanValidation(t *testing.T) {
	geo := device.TinyLX()
	golden := fabric.NewImage(geo)
	dyn := fabric.DynRegion(geo).Frames()
	cases := []struct {
		name string
		spec Spec
	}{
		{"nil geometry", Spec{Golden: golden, DynFrames: dyn}},
		{"nil golden", Spec{Geo: geo, DynFrames: dyn}},
		{"geometry mismatch", Spec{Geo: device.SmallLX(), Golden: golden, DynFrames: dyn}},
		{"empty dyn", Spec{Geo: geo, Golden: golden}},
		{"dyn out of range", Spec{Geo: geo, Golden: golden, DynFrames: []int{geo.NumFrames()}}},
		{"non-bijective order", Spec{Geo: geo, Golden: golden, DynFrames: dyn, Permutation: []int{0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewPlan(tc.spec); err == nil {
				t.Fatal("invalid spec accepted")
			}
		})
	}
}

func TestConfigBatching(t *testing.T) {
	geo := device.TinyLX()
	golden := fabric.NewImage(geo)
	dyn := fabric.DynRegion(geo).Frames()
	ceil := func(a, b int) int { return (a + b - 1) / b }
	cases := []struct {
		batch, wantPackets int
	}{
		{0, len(dyn)},
		{1, len(dyn)},
		{3, ceil(len(dyn), 3)},
		{99, ceil(len(dyn), MaxConfigBatch)}, // clamped to the MTU bound
	}
	for _, tc := range cases {
		p, err := NewPlan(Spec{Geo: geo, Golden: golden, DynFrames: dyn, ConfigBatch: tc.batch})
		if err != nil {
			t.Fatal(err)
		}
		if p.ConfigPackets() != tc.wantPackets {
			t.Fatalf("batch %d: %d packets, want %d", tc.batch, p.ConfigPackets(), tc.wantPackets)
		}
	}
}

func TestPlanDoesNotAliasInputs(t *testing.T) {
	geo := device.TinyLX()
	golden := fabric.NewImage(geo)
	dyn := fabric.DynRegion(geo).Frames()
	p, err := NewPlan(Spec{Geo: geo, Golden: golden, DynFrames: dyn})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint32, len(p.expected[0]))
	copy(want, p.expected[0])
	// Scribbling over the caller's golden image after the build must not
	// reach the plan — it is shared read-only across concurrent Runs.
	g := golden.Frame(0)
	for i := range g {
		g[i] = 0xDEADBEEF
	}
	for i := range want {
		if p.expected[0][i] != want[i] {
			t.Fatal("plan aliases the caller's golden image")
		}
	}
	// Order() hands out copies, not the plan's own slice.
	o := p.Order()
	o[0] = -42
	if p.order[0] == -42 {
		t.Fatal("Order() leaks the plan's internal slice")
	}
}

func TestBackoffBounds(t *testing.T) {
	// Backoff doubles, caps at MaxBackoff and jitters within [d/2, d).
	// Construct the session directly: newSession would start a recv pump.
	s := &session{pol: RetryPolicy{Timeout: time.Second, Backoff: 2 * time.Millisecond,
		MaxBackoff: 8 * time.Millisecond, Seed: 7}, rng: rand.New(rand.NewSource(7))}
	for attempt := 1; attempt <= 6; attempt++ {
		start := time.Now()
		s.sleepBackoff(attempt)
		d := time.Since(start)
		if d > 50*time.Millisecond {
			t.Fatalf("attempt %d slept %v, cap is 8ms", attempt, d)
		}
	}
}
