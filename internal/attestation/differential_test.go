package attestation_test

import (
	"math/rand"
	"sync"
	"testing"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
)

// diffSpec builds the golden image for one nonce and wraps it in a Spec
// with the given plan-shaping options. patchable toggles the nonce-patch
// machinery; everything else is identical, so a patched plan and a cold
// plain build at the same nonce must be bit-for-bit interchangeable.
func diffSpec(t testing.TB, geo *device.Geometry, nonce uint64, offset, batch int, steps uint32, patchable bool) attestation.Spec {
	t.Helper()
	golden, dyn, err := core.BuildGolden(geo, netlist.Blinker(8), 0xD00D, nonce)
	if err != nil {
		t.Fatal(err)
	}
	return attestation.Spec{
		Geo:            geo,
		Golden:         golden,
		DynFrames:      dyn,
		Offset:         offset,
		ConfigBatch:    batch,
		AppSteps:       steps,
		PatchableNonce: patchable,
		NonceBits:      core.NonceBits,
	}
}

// TestDifferentialPatchedEqualsColdBuild is the tentpole's differential
// proof: for randomized geometries, plan options and nonces, patching a
// plan to nonce n (Plan.WithNonce) produces exactly the artifacts a cold
// NewPlan would build from a golden image placed at n — same wire bytes,
// same readback order, same comparison frames — as witnessed by the
// plan fingerprint. Covers plain (masked) and CAPTURE (predicted) modes
// and batch boundaries that mix application and nonce frames in one
// configuration packet.
func TestDifferentialPatchedEqualsColdBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		geo    *device.Geometry
		offset int
		batch  int
		steps  uint32
	}{
		{device.TinyLX(), 0, 1, 0},
		{device.TinyLX(), 7, 3, 0},   // batch straddles the app/nonce frame boundary
		{device.TinyLX(), 13, 4, 0},  // max batch
		{device.TinyLX(), 0, 1, 5},   // CAPTURE: predicted frames, no mask
		{device.TinyLX(), 3, 4, 2},   // CAPTURE + batching
		{device.SmallLX(), 11, 2, 0}, // second geometry
	}
	for _, tc := range cases {
		baseNonce := rng.Uint64()
		base, err := attestation.NewPlan(diffSpec(t, tc.geo, baseNonce, tc.offset, tc.batch, tc.steps, true))
		if err != nil {
			t.Fatalf("%s offset=%d batch=%d steps=%d: base build: %v", tc.geo.Name, tc.offset, tc.batch, tc.steps, err)
		}
		for trial := 0; trial < 3; trial++ {
			n := rng.Uint64()
			if trial == 0 {
				n = baseNonce // identity patch must also hold
			}
			patched, err := base.WithNonce(n)
			if err != nil {
				t.Fatalf("WithNonce(%#x): %v", n, err)
			}
			if got, ok := patched.Nonce(); !ok || got != n {
				t.Fatalf("patched plan reports nonce %#x/%v, want %#x", got, ok, n)
			}
			cold, err := attestation.NewPlan(diffSpec(t, tc.geo, n, tc.offset, tc.batch, tc.steps, false))
			if err != nil {
				t.Fatalf("cold build at %#x: %v", n, err)
			}
			if patched.Fingerprint() != cold.Fingerprint() {
				t.Fatalf("%s offset=%d batch=%d steps=%d nonce=%#x: patched plan differs from cold build",
					tc.geo.Name, tc.offset, tc.batch, tc.steps, n)
			}
			// A cold *patchable* build at n must agree too: the patch
			// metadata may not leak into the protocol artifacts.
			coldPatchable, err := attestation.NewPlan(diffSpec(t, tc.geo, n, tc.offset, tc.batch, tc.steps, true))
			if err != nil {
				t.Fatalf("cold patchable build at %#x: %v", n, err)
			}
			if coldPatchable.Fingerprint() != cold.Fingerprint() {
				t.Fatalf("patchable cold build differs from plain cold build at %#x", n)
			}
		}
	}
}

// TestWithNoncePathIndependence: chained patches must be equivalent to a
// single patch from the base — the patch state may not accumulate drift.
func TestWithNoncePathIndependence(t *testing.T) {
	base, err := attestation.NewPlan(diffSpec(t, device.TinyLX(), 0xA11CE, 5, 2, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	hop, err := base.WithNonce(0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	chained, err := hop.WithNonce(0xFACADE)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := base.WithNonce(0xFACADE)
	if err != nil {
		t.Fatal(err)
	}
	if chained.Fingerprint() != direct.Fingerprint() {
		t.Fatal("base→a→b differs from base→b")
	}
	// And the base itself must be untouched by the patches made from it.
	roundtrip, err := chained.WithNonce(0xA11CE)
	if err != nil {
		t.Fatal(err)
	}
	if roundtrip.Fingerprint() != base.Fingerprint() {
		t.Fatal("round-tripping back to the base nonce does not reproduce the base plan")
	}
}

// TestWithNonceRequiresPatchableSpec: plans built without PatchableNonce
// have their nonce baked into their identity and must refuse to patch.
func TestWithNonceRequiresPatchableSpec(t *testing.T) {
	plain, err := attestation.NewPlan(diffSpec(t, device.TinyLX(), 0xCAFE, 0, 1, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if plain.NoncePatchable() {
		t.Fatal("plain plan claims to be patchable")
	}
	if _, err := plain.WithNonce(1); err == nil {
		t.Fatal("WithNonce on a non-patchable plan succeeded")
	}
	if _, ok := plain.Nonce(); ok {
		t.Fatal("non-patchable plan reports a nonce")
	}
}

// TestSpecKeyNonceFreedom: under PatchableNonce the cache key must not
// depend on the placed nonce (that is what lets one cached plan serve
// every nonce of a class), while non-patchable keys must keep their
// per-nonce separation, and the two key spaces must never collide.
func TestSpecKeyNonceFreedom(t *testing.T) {
	geo := device.TinyLX()
	pA := attestation.SpecKey(diffSpec(t, geo, 0xAAAA, 0, 1, 0, true))
	pB := attestation.SpecKey(diffSpec(t, geo, 0xBBBB, 0, 1, 0, true))
	if pA != pB {
		t.Fatal("patchable specs that differ only in nonce have different keys")
	}
	nA := attestation.SpecKey(diffSpec(t, geo, 0xAAAA, 0, 1, 0, false))
	nB := attestation.SpecKey(diffSpec(t, geo, 0xBBBB, 0, 1, 0, false))
	if nA == nB {
		t.Fatal("non-patchable specs with different nonces share a key")
	}
	if pA == nA {
		t.Fatal("patchable and non-patchable key spaces collide")
	}
	// Options still separate patchable keys.
	pOff := attestation.SpecKey(diffSpec(t, geo, 0xAAAA, 9, 1, 0, true))
	if pA == pOff {
		t.Fatal("patchable key ignores the readback offset")
	}
}

// TestPlanCachePatchedHitMatchesColdBuild: a cache hit for a patchable
// spec at a *different* nonce than the cached build must come back
// re-nonced — equivalent to a cold build at the requested nonce — while
// still counting as a hit, not a build.
func TestPlanCachePatchedHitMatchesColdBuild(t *testing.T) {
	c := attestation.NewPlanCache(0)
	geo := device.TinyLX()

	first, built, err := c.GetOrBuild(diffSpec(t, geo, 0xAAAA, 0, 2, 0, true))
	if err != nil || !built {
		t.Fatalf("cold get: built=%v err=%v", built, err)
	}
	if n, _ := first.Nonce(); n != 0xAAAA {
		t.Fatalf("cold plan nonce %#x", n)
	}

	second, built, err := c.GetOrBuild(diffSpec(t, geo, 0xBBBB, 0, 2, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	if built {
		t.Fatal("same class at a new nonce rebuilt the plan — nonce leaked into the key")
	}
	if n, _ := second.Nonce(); n != 0xBBBB {
		t.Fatalf("hit plan not re-nonced: %#x", n)
	}
	cold, err := attestation.NewPlan(diffSpec(t, geo, 0xBBBB, 0, 2, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if second.Fingerprint() != cold.Fingerprint() {
		t.Fatal("patched cache hit differs from a cold build at the requested nonce")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestConcurrentWithNonceSharedBase hammers one shared base plan with
// concurrent WithNonce calls (run under -race): patches of an immutable
// plan must neither interfere with each other nor corrupt the base.
func TestConcurrentWithNonceSharedBase(t *testing.T) {
	base, err := attestation.NewPlan(diffSpec(t, device.TinyLX(), 0x5EED, 0, 3, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	nonces := []uint64{1, 0xBEEF, ^uint64(0), 0x5EED, 0x0123_4567_89AB_CDEF}
	want := make(map[uint64][32]byte, len(nonces))
	for _, n := range nonces {
		cold, err := attestation.NewPlan(diffSpec(t, device.TinyLX(), n, 0, 3, 0, false))
		if err != nil {
			t.Fatal(err)
		}
		want[n] = cold.Fingerprint()
	}
	baseFP := base.Fingerprint()

	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				n := nonces[(w+i)%len(nonces)]
				p, err := base.WithNonce(n)
				if err != nil {
					t.Errorf("WithNonce(%#x): %v", n, err)
					return
				}
				if p.Fingerprint() != want[n] {
					t.Errorf("concurrent patch to %#x drifted from cold build", n)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if base.Fingerprint() != baseFP {
		t.Fatal("concurrent patches mutated the shared base plan")
	}
}
