package attestation_test

import (
	"sync"
	"testing"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
)

// cacheSpec builds the Spec for one (nonce, offset) point of the test
// geometry — distinct nonces produce distinct golden images and therefore
// distinct cache keys.
func cacheSpec(t testing.TB, nonce uint64, offset int) attestation.Spec {
	t.Helper()
	geo := device.TinyLX()
	golden, dyn, err := core.BuildGolden(geo, netlist.Blinker(8), 0xD00D, nonce)
	if err != nil {
		t.Fatal(err)
	}
	return attestation.Spec{Geo: geo, Golden: golden, DynFrames: dyn, Offset: offset}
}

func TestPlanCacheHitReturnsSamePlan(t *testing.T) {
	c := attestation.NewPlanCache(0)
	spec := cacheSpec(t, 0xCAFE, 0)

	p1, built, err := c.GetOrBuild(spec)
	if err != nil || !built {
		t.Fatalf("cold get: built=%v err=%v", built, err)
	}
	p2, built, err := c.GetOrBuild(spec)
	if err != nil || built {
		t.Fatalf("warm get rebuilt: built=%v err=%v", built, err)
	}
	if p1 != p2 {
		t.Fatal("cache hit returned a different plan")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestPlanCacheKeySensitivity(t *testing.T) {
	// The key must cover the golden digest and the plan-shaping options:
	// a different nonce (different golden) or a different offset must
	// miss; an identical spec built from an independent golden image of
	// the same nonce must hit.
	c := attestation.NewPlanCache(0)
	base := cacheSpec(t, 0xCAFE, 0)
	if _, built, err := c.GetOrBuild(base); err != nil || !built {
		t.Fatalf("cold: built=%v err=%v", built, err)
	}
	if _, built, err := c.GetOrBuild(cacheSpec(t, 0xD1CE, 0)); err != nil || !built {
		t.Fatalf("different nonce should build: built=%v err=%v", built, err)
	}
	if _, built, err := c.GetOrBuild(cacheSpec(t, 0xCAFE, 7)); err != nil || !built {
		t.Fatalf("different offset should build: built=%v err=%v", built, err)
	}
	// A freshly rebuilt golden for the same nonce has equal content, so
	// the digest-keyed lookup hits even though the *fabric.Image differs.
	if _, built, err := c.GetOrBuild(cacheSpec(t, 0xCAFE, 0)); err != nil || built {
		t.Fatalf("equal-content spec should hit: built=%v err=%v", built, err)
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d plans, want 3", c.Len())
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := attestation.NewPlanCache(2)
	a := cacheSpec(t, 1, 0)
	b := cacheSpec(t, 2, 0)
	d := cacheSpec(t, 3, 0)

	c.GetOrBuild(a)
	c.GetOrBuild(b)
	c.GetOrBuild(a) // refresh a: b is now least recently used
	c.GetOrBuild(d) // evicts b

	if _, built, _ := c.GetOrBuild(a); built {
		t.Fatal("a was evicted despite being recently used")
	}
	if _, built, _ := c.GetOrBuild(d); built {
		t.Fatal("d was evicted straight after insert")
	}
	if _, built, _ := c.GetOrBuild(b); !built {
		t.Fatal("b survived beyond the capacity-2 bound")
	}
}

func TestPlanCacheConcurrentSingleBuild(t *testing.T) {
	// Concurrent requests for one missing key must build exactly once;
	// the waiters share the builder's plan.
	c := attestation.NewPlanCache(0)
	spec := cacheSpec(t, 0xFEED, 0)
	const workers = 16
	plans := make([]*attestation.Plan, workers)
	builds := make([]bool, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, built, err := c.GetOrBuild(spec)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i], builds[i] = p, built
		}(i)
	}
	wg.Wait()
	nbuilt := 0
	for i := 0; i < workers; i++ {
		if builds[i] {
			nbuilt++
		}
		if plans[i] != plans[0] {
			t.Fatal("workers got different plans for one key")
		}
	}
	if nbuilt != 1 {
		t.Fatalf("%d workers report having built, want exactly 1", nbuilt)
	}
}
