package attestation

import (
	"testing"

	"sacha/internal/cmac"
	"sacha/internal/device"
	"sacha/internal/signature"
)

// BenchmarkFrameAbsorb pins the zero-allocation contract of the per-frame
// hot path: serialising a frame into the Run's reused scratch buffer and
// absorbing it into the MAC and the transcript must not allocate — on the
// paper's XC6VLX240T this path runs 28,488 times per attestation, so a
// single allocation per frame is 28k garbage objects per device.
func BenchmarkFrameAbsorb(b *testing.B) {
	words := make([]uint32, device.FrameWords)
	for i := range words {
		words[i] = uint32(i * 2654435761)
	}
	var key [16]byte
	mac, err := cmac.New(key[:])
	if err != nil {
		b.Fatal(err)
	}
	transcript := signature.NewTranscript()
	scratch := make([]byte, 0, device.FrameWords*4)

	if avg := testing.AllocsPerRun(200, func() {
		scratch = appendFrameBytes(scratch[:0], words)
		mac.Update(scratch)
		transcript.Absorb(scratch)
	}); avg != 0 {
		b.Fatalf("frame absorption allocates %.1f objects per frame, want 0", avg)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = appendFrameBytes(scratch[:0], words)
		mac.Update(scratch)
		transcript.Absorb(scratch)
	}
}
