package attestation

import (
	"fmt"
	"strings"
)

// FreshnessPolicy selects the freshness unit of a fleet sweep: how much
// attestation material (nonce, MAC key) is renewed per device versus
// shared across the sweep. The paper's freshness argument (§5.2) rests
// on the nonce configured into the fabric and the PUF-derived key; the
// policies trade re-derivation cost against the blast radius of a
// captured transcript.
type FreshnessPolicy int

const (
	// PerSweep is the status quo and the zero value: one nonce for the
	// whole sweep, shared by every device of a class through one plan.
	// A captured transcript is replayable only within the same sweep
	// and only against the same device's key.
	PerSweep FreshnessPolicy = iota
	// PerDevice draws a fresh nonce for every device of every sweep.
	// With nonce-patchable plans the per-device cost is a WithNonce
	// patch of the class's cached plan — O(nonce column), not a
	// rebuild — so the plan cache keeps serving across rotations.
	PerDevice
	// RotateKey renews the PUF-derived MAC key of every device before
	// the sweep (core.System.RotateKey ships the next PUF circuit) and
	// additionally draws per-device nonces. The shipped circuit changes
	// the golden image, so each class's plan is rebuilt once per sweep;
	// the per-device nonces still come from WithNonce patches of that
	// rebuilt plan. Requires every fleet member to use the DynPart-PUF
	// key mode.
	RotateKey
)

// String returns the canonical flag spelling of the policy.
func (p FreshnessPolicy) String() string {
	switch p {
	case PerSweep:
		return "per-sweep"
	case PerDevice:
		return "per-device"
	case RotateKey:
		return "rotate-key"
	}
	return fmt.Sprintf("freshness(%d)", int(p))
}

// Valid reports whether p is one of the defined policies.
func (p FreshnessPolicy) Valid() bool {
	return p == PerSweep || p == PerDevice || p == RotateKey
}

// ParseFreshnessPolicy parses a policy name as accepted by the
// -freshness flag: the canonical spellings of String plus the obvious
// squashed/shortened variants, case-insensitively. The empty string is
// the default policy, PerSweep.
func ParseFreshnessPolicy(s string) (FreshnessPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "per-sweep", "persweep", "per_sweep", "sweep":
		return PerSweep, nil
	case "per-device", "perdevice", "per_device", "device":
		return PerDevice, nil
	case "rotate-key", "rotatekey", "rotate_key", "rotate":
		return RotateKey, nil
	}
	return PerSweep, fmt.Errorf("attestation: unknown freshness policy %q (want per-sweep, per-device or rotate-key)", s)
}
