package attestation_test

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/prover"
)

// newProverBuild boots one device with a chosen static build ID and an
// optional verifier-side channel wrapper (fault injection). A build ID
// differing from the plan's golden yields deterministic static-frame
// mismatches — the rejected-device fixture of the determinism tests.
func newProverBuild(t testing.TB, geo *device.Geometry, buildID uint64, wrap func(channel.Endpoint) channel.Endpoint) channel.Endpoint {
	t.Helper()
	dev, err := prover.New(prover.Config{
		Geo:     geo,
		BootMem: core.BuildBootMem(geo, buildID),
		Key:     runKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.PowerOn(); err != nil {
		t.Fatal(err)
	}
	vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
	go dev.Serve(prvEP)
	var ep channel.Endpoint = vrfEP
	if wrap != nil {
		ep = wrap(vrfEP)
	}
	t.Cleanup(func() { ep.Close() })
	return ep
}

func windowPolicy(window int) attestation.RetryPolicy {
	return attestation.RetryPolicy{
		Timeout:    25 * time.Millisecond,
		MaxRetries: 6,
		Backoff:    time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
		Seed:       1,
		Window:     window,
	}
}

// TestWindowDeterminism is the correctness invariant of the pipelined
// path: H_Vrf, the mismatch list and the verdict must be bit-identical
// whatever the window size and whatever recoverable reordering or
// duplication the link injects — the CMAC is order-sensitive, so any
// leak of arrival order into the absorption would show up here. Both an
// honest device and a tampered one (wrong static build) are swept, so
// the comparison covers a non-empty mismatch list too.
func TestWindowDeterminism(t *testing.T) {
	plan := buildPlan(t, 0)
	c := plan.NumFrames() // readback message count; configs precede them

	faults := []struct {
		name string
		cfg  *channel.FaultConfig
	}{
		{"clean", nil},
		{"dup", &channel.FaultConfig{Script: []channel.FaultOp{
			{Dir: channel.DirSend, Index: 10, Kind: channel.FaultDuplicate},
			{Dir: channel.DirRecv, Index: c / 2, Kind: channel.FaultDuplicate},
		}}},
		{"reorder", &channel.FaultConfig{ReorderWindow: 3, Script: []channel.FaultOp{
			{Dir: channel.DirRecv, Index: c / 3, Kind: channel.FaultReorder},
			{Dir: channel.DirSend, Index: c / 2, Kind: channel.FaultReorder},
		}}},
	}

	for _, pv := range []struct {
		name    string
		buildID uint64
	}{
		{"honest", 0xD00D},
		{"tampered", 0xBEEF},
	} {
		t.Run(pv.name, func(t *testing.T) {
			var baseline *attestation.Report
			for _, fl := range faults {
				for _, window := range []int{1, 4, 16, 100} { // 100 exercises the MaxWindow clamp
					ep := newProverBuild(t, plan.Geo(), pv.buildID, func(ep channel.Endpoint) channel.Endpoint {
						if fl.cfg == nil {
							return ep
						}
						return channel.NewFault(ep, *fl.cfg)
					})
					var key [16]byte = runKey
					rep, err := plan.Run(ep, attestation.RunOpts{Key: key, Retry: windowPolicy(window)})
					if err != nil {
						t.Fatalf("%s/window=%d: %v", fl.name, window, err)
					}
					if baseline == nil {
						baseline = rep
						if pv.buildID == 0xBEEF && len(rep.Mismatches) == 0 {
							t.Fatal("tampered baseline found no mismatches — fixture broken")
						}
						if rep.HVrf == ([16]byte{}) {
							t.Fatal("baseline H_Vrf is zero in MAC mode")
						}
						continue
					}
					if rep.HVrf != baseline.HVrf {
						t.Fatalf("%s/window=%d: H_Vrf %x != baseline %x", fl.name, window, rep.HVrf, baseline.HVrf)
					}
					if !reflect.DeepEqual(rep.Mismatches, baseline.Mismatches) {
						t.Fatalf("%s/window=%d: mismatches %v != baseline %v", fl.name, window, rep.Mismatches, baseline.Mismatches)
					}
					if rep.MACOK != baseline.MACOK || rep.ConfigOK != baseline.ConfigOK || rep.Accepted != baseline.Accepted {
						t.Fatalf("%s/window=%d: verdict (%v,%v,%v) != baseline (%v,%v,%v)",
							fl.name, window, rep.MACOK, rep.ConfigOK, rep.Accepted,
							baseline.MACOK, baseline.ConfigOK, baseline.Accepted)
					}
					if rep.FramesRead != plan.NumFrames() {
						t.Fatalf("%s/window=%d: read %d frames, want %d", fl.name, window, rep.FramesRead, plan.NumFrames())
					}
				}
			}
		})
	}
}

// TestWindowIgnoredWithoutReliableTransport: Window only means something
// over the sequence-envelope transport; in plain mode the Run must fall
// back to the paper's lockstep protocol and still accept.
func TestWindowIgnoredWithoutReliableTransport(t *testing.T) {
	plan := buildPlan(t, 0)
	ep := newProver(t, plan.Geo())
	var key [16]byte = runKey
	rep, err := plan.Run(ep, attestation.RunOpts{Key: key, Retry: attestation.RetryPolicy{Window: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("plain-mode run with Window set rejected: %+v", rep)
	}
}

// TestSessionPumpNoLeak: a Run that fails early (retry budget exhausted)
// while the peer floods the link used to strand the receive pump forever
// on a full recvCh. The deferred session close must release it; the
// goroutine count has to return to baseline.
func TestSessionPumpNoLeak(t *testing.T) {
	plan := buildPlan(t, 0)
	var key [16]byte = runKey
	base := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
		// Flood the verifier with undecodable junk — far more than the
		// 64-slot receive buffer. SimPair queues are unbounded, so this
		// goroutine always terminates on its own.
		go func() {
			for j := 0; j < 500; j++ {
				if prvEP.Send([]byte{0xFF, 0xEE}) != nil {
					return
				}
			}
		}()
		_, err := plan.Run(vrfEP, attestation.RunOpts{Key: key, Retry: attestation.RetryPolicy{
			Timeout: 10 * time.Millisecond, MaxRetries: 1, Backoff: time.Millisecond, Window: 8,
		}})
		if err == nil {
			t.Fatal("junk-flooded run succeeded")
		}
		vrfEP.Close()
		prvEP.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d at start, %d after runs", base, runtime.NumGoroutine())
}
