package attestation

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"sacha/internal/fabric"
)

// DefaultPlanCacheSize bounds a PlanCache built with capacity <= 0. A
// plan holds pre-encoded messages and comparison frames for a whole
// geometry, so a long-running verifier wants a deliberate, small bound
// rather than unbounded growth across nonces.
const DefaultPlanCacheSize = 32

// SpecKey fingerprints everything a plan build depends on: the golden
// image digest (which covers the geometry's frame content and the placed
// nonce), the geometry name, the dynamic frame list and every
// plan-shaping option. Two specs with equal keys build
// behaviourally-identical plans, so a cached plan may serve both.
//
// Under PatchableNonce the golden image is hashed with the nonce
// register's bits zeroed (fabric.NonceFreeDigest): specs that differ
// only in the placed nonce share a key, so one cached plan serves every
// nonce of a device class — GetOrBuild patches it to the requested
// nonce on the way out. Patchable and non-patchable specs never share
// keys.
func SpecKey(spec Spec) [32]byte {
	h := sha256.New()
	if spec.Golden != nil {
		if spec.PatchableNonce {
			if d, err := fabric.NonceFreeDigest(spec.Golden, spec.nonceBits()); err == nil {
				h.Write(d[:])
			} else {
				// Conservative fallback: an unusable template degrades to
				// the nonce-bearing key (per-nonce cache entries), never
				// to a wrong share.
				d := spec.Golden.Digest()
				h.Write(d[:])
			}
		} else {
			d := spec.Golden.Digest()
			h.Write(d[:])
		}
	}
	geo := ""
	if spec.Geo != nil {
		geo = spec.Geo.Name
	}
	fmt.Fprintf(h, "|patch:%t:%d|geo:%s|off:%d|app:%d|sig:%t|batch:%d|comp:%t|delta:%t|dyn:",
		spec.PatchableNonce, spec.nonceBits(), geo, spec.Offset, spec.AppSteps, spec.SignatureMode, spec.ConfigBatch,
		spec.Compress, spec.Delta)
	var buf [8]byte
	for _, f := range spec.DynFrames {
		binary.BigEndian.PutUint64(buf[:], uint64(f))
		h.Write(buf[:])
	}
	fmt.Fprintf(h, "|perm:%d:", len(spec.Permutation))
	for _, f := range spec.Permutation {
		binary.BigEndian.PutUint64(buf[:], uint64(f))
		h.Write(buf[:])
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// PlanCache is a concurrency-safe LRU of built plans keyed by SpecKey —
// (golden-image digest, geometry, options hash). Long-running verifiers
// and repeated fleet sweeps hit the cache instead of redoing the
// O(fabric) prediction, masking and message pre-encoding work; plans are
// immutable, so a cached plan is shared as-is across concurrent Runs.
// Concurrent requests for the same missing key build once: the first
// requester builds, the rest wait for that build.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[[32]byte]*list.Element
	inflight map[[32]byte]*inflightBuild
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	key  [32]byte
	plan *Plan
}

type inflightBuild struct {
	done chan struct{}
	plan *Plan
	err  error
}

// NewPlanCache returns a cache bounded to capacity plans (LRU eviction);
// capacity <= 0 means DefaultPlanCacheSize.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[[32]byte]*list.Element),
		inflight: make(map[[32]byte]*inflightBuild),
	}
}

// GetOrBuild returns the cached plan for the spec, or builds, caches and
// returns it. built reports whether THIS call performed the build — a
// caller that waited out another goroutine's in-flight build of the same
// key gets built=false, so build counters stay exact under concurrency.
//
// Under Spec.PatchableNonce a cache hit may return a plan built for a
// different nonce of the same class; GetOrBuild then patches it to the
// spec's own nonce via WithNonce before returning, so the result is
// always equivalent to NewPlan(spec) — the hit costs O(nonce column),
// not O(fabric).
func (c *PlanCache) GetOrBuild(spec Spec) (plan *Plan, built bool, err error) {
	key := SpecKey(spec)
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		plan := el.Value.(*cacheEntry).plan
		c.mu.Unlock()
		mPlanCacheHits.Inc()
		plan, err := adaptToSpec(plan, spec)
		return plan, false, err
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		mPlanCacheWaits.Inc()
		<-fl.done
		if fl.err != nil {
			return fl.plan, false, fl.err
		}
		plan, err := adaptToSpec(fl.plan, spec)
		return plan, false, err
	}
	fl := &inflightBuild{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()
	mPlanCacheMisses.Inc()

	fl.plan, fl.err = NewPlan(spec)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		el := c.order.PushFront(&cacheEntry{key: key, plan: fl.plan})
		c.entries[key] = el
		mPlanCacheEntries.Inc()
		for c.order.Len() > c.capacity {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
			mPlanCacheEvictions.Inc()
			mPlanCacheEntries.Dec()
		}
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.plan, fl.err == nil, fl.err
}

// adaptToSpec re-nonces a cached patchable plan to the nonce placed in
// the requesting spec's golden image, so every GetOrBuild return is
// equivalent to a cold NewPlan(spec). Non-patchable hits pass through.
func adaptToSpec(plan *Plan, spec Spec) (*Plan, error) {
	if plan == nil || !spec.PatchableNonce || plan.patch == nil {
		return plan, nil
	}
	nonce, err := fabric.ReadNonce(spec.Golden, plan.patch.bits)
	if err != nil {
		return nil, err
	}
	return plan.WithNonce(nonce)
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns the lifetime hit and miss counts. A wait on another
// goroutine's in-flight build counts as neither.
func (c *PlanCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
