package attestation

import (
	"sacha/internal/obs"
)

// Phase label values of the per-phase latency histograms — the live
// counterpart of the paper's action taxonomy (Table 3 / Fig. 9):
// config covers A1–A2 (dynamic configuration), readback A3–A8 (frame
// readback, MAC absorption, frame sendback), checksum A9–A10
// (MAC/signature finalisation and exchange), verdict the verifier-side
// comparison close-out.
const (
	PhaseConfig   = "config"
	PhaseReadback = "readback"
	PhaseChecksum = "checksum"
	PhaseVerdict  = "verdict"
)

// Metric families of the attestation engine. All land in the Default
// registry; every hot-path update is one atomic operation.
var (
	mPhaseSeconds = obs.Default().HistogramVec("sacha_attest_phase_seconds",
		"Wall time of attestation protocol phases per run.", nil, "phase")
	mRunSeconds = obs.Default().Histogram("sacha_attest_run_seconds",
		"End-to-end wall time of attestation runs.", nil)
	mRuns = obs.Default().CounterVec("sacha_attest_runs_total",
		"Attestation runs by verdict (accepted, rejected, error).", "verdict")
	mFramesRead = obs.Default().Counter("sacha_attest_frames_read_total",
		"Configuration frames read back and absorbed into the MAC.")
	mFramesConfigured = obs.Default().Counter("sacha_attest_frames_configured_total",
		"Configuration frames written into the dynamic partition.")

	mFramesScanned = obs.Default().Counter("sacha_config_frames_scanned_total",
		"Dynamic frames probed by the delta-mode scan.")
	mFramesRewritten = obs.Default().Counter("sacha_config_frames_rewritten_total",
		"Dynamic frames rewritten by applied delta runs.")
	mFramesSkipped = obs.Default().Counter("sacha_config_frames_skipped_total",
		"Dynamic frames proven bit-identical by the delta scan and not rewritten.")
	mDeltaFallbacks = obs.Default().CounterVec("sacha_delta_fallbacks_total",
		"Delta runs that fell back to the full overwrite, by reason (capability, cold, threshold, mismatch).", "reason")

	mCompressRawBytes = obs.Default().Counter("sacha_compress_raw_bytes_total",
		"Uncompressed payload bytes moved through the compressed wire encodings, both directions.")
	mCompressWireBytes = obs.Default().Counter("sacha_compress_wire_bytes_total",
		"Compressed payload bytes actually on the wire, both directions.")
	mCompressRatio = obs.Default().Histogram("sacha_compress_ratio",
		"Per-run compression ratio (raw bytes / wire bytes) of the compressed payloads.",
		[]float64{1, 1.5, 2, 3, 5, 8, 13, 21, 34, 55})

	mRetries = obs.Default().Counter("sacha_transport_retries_total",
		"Message re-sends by the reliable transport.")
	mTransportFaults = obs.Default().Counter("sacha_transport_faults_total",
		"Received messages discarded by the reliable transport (corrupt envelopes, stale duplicates).")
	mTimeouts = obs.Default().Counter("sacha_transport_timeouts_total",
		"Per-message response timeouts observed by the reliable transport.")

	mWindowInflight = obs.Default().Gauge("sacha_attest_window_inflight",
		"Sequence envelopes currently outstanding across all pipelined runs.")
	mWindowCmds = obs.Default().Counter("sacha_attest_window_commands_total",
		"Commands shipped through the pipelined window engine.")

	mPlanBuilds = obs.Default().Counter("sacha_plan_builds_total",
		"Attestation plans constructed (golden prediction, masking, message pre-encoding).")
	mPlanBuildSeconds = obs.Default().Histogram("sacha_plan_build_seconds",
		"Wall time of attestation plan builds.", nil)
	mPlanCacheHits = obs.Default().Counter("sacha_plancache_hits_total",
		"Plan cache lookups served from a cached plan.")
	mPlanCacheMisses = obs.Default().Counter("sacha_plancache_misses_total",
		"Plan cache lookups that had to build.")
	mPlanCacheWaits = obs.Default().Counter("sacha_plancache_singleflight_waits_total",
		"Plan cache lookups that waited on another goroutine's in-flight build.")
	mPlanCacheEvictions = obs.Default().Counter("sacha_plancache_evictions_total",
		"Plans evicted from the cache by the LRU bound.")
	mPlanCacheEntries = obs.Default().Gauge("sacha_plancache_entries",
		"Plans currently cached across all plan caches.")

	mPlanPatches = obs.Default().Counter("sacha_plan_patches_total",
		"Plans re-nonced via WithNonce (O(nonce column) patch) instead of a full rebuild.")
	mPlanPatchSeconds = obs.Default().Histogram("sacha_plan_patch_seconds",
		"Wall time of per-session nonce patches of shared plans.", nil)
)
