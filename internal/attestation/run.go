package attestation

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"sacha/internal/channel"
	"sacha/internal/cmac"
	"sacha/internal/compress"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/obs/span"
	"sacha/internal/protocol"
	"sacha/internal/signature"
	"sacha/internal/sim"
	"sacha/internal/timing"
	"sacha/internal/trace"
)

// RunOpts are the per-session inputs of one attestation: everything that
// must NOT be shared across devices. The MAC key and the CMAC/transcript
// state derived from it are per device (each fleet member has its own
// enrolled key), the retry session is per connection, and the trace
// sinks are per caller.
type RunOpts struct {
	// Key is the enrolled MAC key (from the PUF enrollment database).
	Key [16]byte
	// SigVerifier checks signature-mode responses; required when the
	// plan was built with SignatureMode.
	SigVerifier *signature.Verifier
	// Retry, when enabled, runs the protocol over the reliable
	// transport. The zero value speaks the paper's bare protocol.
	// Retry.Window > 1 additionally pipelines the configuration and
	// readback phases with up to Window outstanding frames.
	Retry RetryPolicy
	// Trace, if non-nil, receives a Fig. 9-style protocol trace.
	Trace io.Writer
	// Events, if non-nil, records every protocol step with its modelled
	// duration (the machine-readable Fig. 9).
	Events *trace.Log
	// Timeline, if non-nil, accumulates verifier-side software time.
	// sim.Timeline is not concurrency-safe: concurrent Runs must use
	// distinct timelines (or nil).
	Timeline *sim.Timeline
	// Compress opts this session into the compressed wire encodings
	// (requires a plan built with Spec.Compress). The capability is
	// negotiated via Hello; a prover that does not grant it silently gets
	// the plain packets. The verdict and H_Vrf are identical either way.
	Compress bool
	// Delta opts this session into the delta configuration mode (requires
	// a plan built with Spec.Delta): scan the dynamic frames first,
	// rewrite only the nonce-register frames when the device verifiably
	// holds the previous golden configuration, and fall back to the full
	// overwrite otherwise. The fallback decision is recorded in
	// Report.Delta — a delta run never silently skips a frame it cannot
	// prove clean.
	Delta bool
	// DeltaWarm asserts the delta admissibility precondition: the
	// immediately preceding full-trust attestation of THIS device
	// succeeded under the same key generation and golden class. The
	// caller (fleet trust ledger, CLI warm-up run) owns that bookkeeping;
	// a run with Delta set but DeltaWarm false falls back to the full
	// overwrite with reason "cold".
	DeltaWarm bool
	// DeltaMaxRewrite caps the frames the delta path may rewrite before
	// falling back to the full overwrite ("threshold"). 0 means a quarter
	// of the dynamic partition, floored at the nonce-frame count.
	DeltaMaxRewrite int
	// Span, if non-nil, is this session's causal span: Run records the
	// four contiguous phase checkpoints as child spans, the Hello
	// negotiation, delta scan outcome and transport summary as span
	// events, and bridges Events (when also set) into the span so the
	// protocol step stream lands on the causal timeline. Every hook is
	// nil-guarded — a nil Span costs the checkpoint path zero
	// allocations (the contract TestNilSpanZeroAlloc pins).
	Span *span.Span
}

// PhaseBreakdown splits one run's wall time across the protocol
// phases. The boundaries are contiguous — config ends where readback
// begins (the CAPTURE App_step, when used, is charged to readback) —
// so the four durations sum to Elapsed up to clock granularity.
type PhaseBreakdown struct {
	// Config is the dynamic-configuration phase (paper actions A1–A2).
	Config time.Duration
	// Readback covers frame readback, MAC absorption and sendback
	// (A3–A8), plus the optional App_step.
	Readback time.Duration
	// Checksum is the MAC/signature finalisation exchange (A9–A10).
	Checksum time.Duration
	// Verdict is the verifier-side comparison close-out.
	Verdict time.Duration
}

// Sum returns the total of the four phases.
func (p PhaseBreakdown) Sum() time.Duration {
	return p.Config + p.Readback + p.Checksum + p.Verdict
}

// DeltaReport records what the delta configuration mode did in one run.
type DeltaReport struct {
	// Enabled: the session requested delta mode.
	Enabled bool
	// Applied: the rewrite-only path ran; false means the run fell back
	// to the full overwrite for the reason below.
	Applied bool
	// Fallback names why the full overwrite ran instead: "capability"
	// (prover did not grant the scan capability), "cold" (admissibility
	// precondition not asserted), "threshold" (rewrite set over
	// DeltaMaxRewrite), "mismatch" (the scan found frames outside the
	// nonce set differing from golden). Empty when Applied.
	Fallback string
	// FramesScanned/FramesRewritten/FramesSkipped count the delta scan
	// and its outcome. Skipped frames were proven bit-identical to the
	// post-overwrite state before being skipped.
	FramesScanned, FramesRewritten, FramesSkipped int
	// Unexpected lists scanned frames outside the nonce set whose raw
	// content differed from the predicted golden readback — the drift
	// (SEU, tamper, stale configuration) that forced the fallback.
	Unexpected []int
}

// Report is the outcome of one attestation.
type Report struct {
	// MACOK: H_Prv equals H_Vrf (frames authentic and untampered in
	// transit). In signature mode this is the signature check.
	MACOK bool
	// HVrf is the verifier-side MAC tag computed over the received
	// frames in plan order (zero in signature mode). It is exposed so
	// determinism across transport configurations — window sizes, fault
	// recovery — is directly observable: any reordering leak into the
	// MAC absorption would change this value.
	HVrf [16]byte
	// ConfigOK: masked received bitstream equals masked golden bitstream.
	ConfigOK bool
	// Accepted is the overall verdict.
	Accepted bool
	// Mismatches lists frame indices whose masked content differed.
	Mismatches []int
	// FramesConfigured and FramesRead count protocol actions.
	FramesConfigured, FramesRead int
	// Retries counts message re-sends by the reliable transport; zero on
	// a clean link. TransportFaults counts received messages that were
	// discarded (corrupted envelopes, stale duplicates). Together they
	// make link flakiness observable and distinguishable from a MAC
	// rejection.
	Retries, TransportFaults int
	// Phases is the per-phase wall-time breakdown of this run; Elapsed
	// is the end-to-end wall time. The phases are contiguous, so
	// Phases.Sum() equals Elapsed up to clock granularity.
	Phases  PhaseBreakdown
	Elapsed time.Duration
	// Compressed: the session negotiated the compressed wire encodings.
	Compressed bool
	// Delta is the delta configuration mode's outcome.
	Delta DeltaReport
}

// Run drives the full SACHa protocol of Fig. 9 against the prover at the
// other end of ep, using only the plan's precomputed artifacts: no
// fabric access, no prediction, no message encoding happens here. One
// Plan may serve any number of concurrent Runs.
//
// With Retry.Window > 1 the configuration and readback phases run
// pipelined: up to Window sequence envelopes stay outstanding and
// responses are re-ordered into plan order before the CMAC/transcript
// absorbs them, so the verdict and H_Vrf are independent of the window
// size and of any transport reordering.
func (p *Plan) Run(ep channel.Endpoint, opts RunOpts) (_ *Report, err error) {
	start := time.Now()
	defer func() {
		if err != nil {
			mRuns.With("error").Inc()
		}
	}()
	trc := func(format string, args ...any) {
		if opts.Trace != nil {
			fmt.Fprintf(opts.Trace, format+"\n", args...)
		}
	}
	rep := &Report{}
	if p.signatureMode && opts.SigVerifier == nil {
		return nil, fmt.Errorf("verifier: signature mode without an enrolled public key")
	}
	if opts.Compress && p.configsC == nil {
		return nil, fmt.Errorf("verifier: RunOpts.Compress requires a plan built with Spec.Compress")
	}
	if opts.Delta && p.scanExpected == nil {
		return nil, fmt.Errorf("verifier: RunOpts.Delta requires a plan built with Spec.Delta")
	}
	sess := newSession(ep, opts.Retry, rep)
	defer sess.close()

	// Bridge the protocol event stream into the session span for the
	// duration of this run. AddSink is safe mid-stream (the Log may be
	// caller-owned and already live), and the remove keeps a reused Log
	// from leaking later events into this run's span.
	if opts.Span != nil && opts.Events != nil {
		defer opts.Events.AddSink(span.LogSink(opts.Span))()
	}

	// rawB/wireB account the compressed payloads moved this run, on both
	// directions; the ratio lands in the compression histogram.
	var rawB, wireB int

	mac, err := cmac.New(opts.Key[:])
	if err != nil {
		return nil, err
	}
	transcript := signature.NewTranscript()
	// One scratch buffer serves every frame serialisation of the Run:
	// cmac.Update and Transcript.Absorb both copy, so reusing the bytes
	// avoids 28k+ allocations on the large geometries.
	scratch := make([]byte, 0, device.FrameWords*4)

	// noteConfig records the per-packet effects of one delivered
	// configuration step; absorbFrame does the same for one read-back
	// frame, folding it into the MAC, the transcript and the golden
	// comparison. Both are shared by the lockstep and windowed paths and
	// are always invoked in plan order.
	noteConfig := func(cs configStep) {
		if opts.Timeline != nil {
			opts.Timeline.Add("vrf-sw", timing.VrfConfigOverhead())
		}
		if opts.Events != nil {
			opts.Events.Add(trace.KindConfig, cs.first,
				p.model.ActionTime(timing.A1)+p.model.ActionTime(timing.A2), "")
		}
		rep.FramesConfigured += cs.count
	}
	absorbFrame := func(idx int, resp *protocol.Message) error {
		if resp.Type == protocol.MsgFrameDataC {
			// Compressed sendback: the decoder bound is one frame, exact —
			// a hostile stream cannot claim more buffer than the frame it
			// answers for.
			words, err := compress.DecodeBounded(resp.Comp, device.FrameWords)
			if err != nil {
				return fmt.Errorf("verifier: compressed readback of frame %d: %w", idx, err)
			}
			if len(words) != device.FrameWords {
				return fmt.Errorf("verifier: compressed readback of frame %d carries %d words, want %d", idx, len(words), device.FrameWords)
			}
			rawB += device.FrameWords * 4
			wireB += len(resp.Comp)
			resp = &protocol.Message{Type: protocol.MsgFrameData, FrameIndex: resp.FrameIndex, Words: words}
		}
		if resp.Type != protocol.MsgFrameData {
			return fmt.Errorf("verifier: readback of frame %d answered with %v (%s)", idx, resp.Type, resp.Err)
		}
		if resp.FrameIndex != uint32(idx) {
			return fmt.Errorf("verifier: asked for frame %d, got %d", idx, resp.FrameIndex)
		}
		scratch = appendFrameBytes(scratch[:0], resp.Words)
		mac.Update(scratch)
		transcript.Absorb(scratch)
		rep.FramesRead++
		if opts.Events != nil {
			opts.Events.Add(trace.KindReadback, idx,
				p.model.ActionTime(timing.A3)+p.model.ActionTime(timing.A4)+p.model.ActionTime(timing.A6), "")
			opts.Events.Add(trace.KindFrameData, idx, p.model.ActionTime(timing.A8), "frame sendback")
		}
		got := resp.Words
		if p.mask != nil {
			got = fabric.ApplyMask(resp.Words, p.mask.Frame(idx))
		}
		want := p.expected[idx]
		for w := range got {
			if got[w] != want[w] {
				rep.Mismatches = append(rep.Mismatches, idx)
				break
			}
		}
		return nil
	}

	windowed := sess.reliable() && opts.Retry.windowSize() > 1

	// Capability negotiation. Hello goes out as the first envelope of the
	// session — it pins the prover's sequence base, freeing every later
	// phase to run windowed from its first packet — and only when the
	// session opts into a capability the plan pre-encoded. A prover that
	// answers anything but Hello_ack grants nothing; the run then
	// degrades to the base protocol instead of failing.
	var caps uint32
	if opts.Compress || opts.Delta {
		var wantCaps uint32
		if opts.Compress {
			wantCaps |= protocol.CapCompress
		}
		if opts.Delta {
			wantCaps |= protocol.CapScan
		}
		helloWire := p.helloWire
		if wantCaps != p.helloCaps {
			if helloWire, err = protocol.Hello(wantCaps).Encode(); err != nil {
				return nil, err
			}
		}
		resp, err := sess.exchange(helloWire, "Hello", true)
		if err != nil {
			return nil, err
		}
		if resp != nil && resp.Type == protocol.MsgHelloAck {
			caps = resp.Caps & wantCaps
		}
		trc("command: Hello(caps=%#x)  ->  granted caps=%#x", wantCaps, caps)
		if opts.Span != nil {
			opts.Span.Event("hello", -1, 0,
				fmt.Sprintf("want=%#x granted=%#x", wantCaps, caps))
		}
	}
	useCompress := opts.Compress && caps&protocol.CapCompress != 0
	rep.Compressed = useCompress

	// sendConfigs ships one pre-encoded packet sequence. The first packet
	// of the session (sess.seq still zero, i.e. no Hello went out) must go
	// lockstep: the prover pins its sequence base on the first envelope,
	// so that one must not race a reordered burst.
	sendConfigs := func(steps []configStep, op string, compressed bool) error {
		note := func(cs configStep) {
			noteConfig(cs)
			if compressed {
				rawB += cs.count * device.FrameWords * 4
				wireB += len(cs.wire)
			}
		}
		k0 := len(steps)
		if windowed {
			k0 = 0
			if sess.seq == 0 && len(steps) > 0 {
				k0 = 1
			}
		}
		for _, cs := range steps[:k0] {
			if err := sess.sendConfig(cs.wire, fmt.Sprintf("%s(%d)", op, cs.first)); err != nil {
				return err
			}
			note(cs)
		}
		rest := steps[k0:]
		if len(rest) == 0 {
			return nil
		}
		cmds := make([]windowCmd, len(rest))
		for k, cs := range rest {
			cmds[k] = windowCmd{enc: cs.wire, op: fmt.Sprintf("%s(%d)", op, cs.first)}
		}
		return sess.runWindow(cmds, opts.Retry.windowSize(), func(k int, resp *protocol.Message) error {
			if resp.Type != protocol.MsgAck {
				return fmt.Errorf("verifier: %s answered with %v (%s)", cmds[k].op, resp.Type, resp.Err)
			}
			note(rest[k])
			return nil
		})
	}

	// Phase 1: dynamic configuration — the verifier overwrites the
	// entire DynMem (bounded-memory model) with the plan's pre-encoded
	// packets, or, in delta mode, scans first and rewrites only the
	// nonce-register frames when every other dynamic frame is proven
	// bit-identical to the post-overwrite state (DESIGN.md §13). The
	// delta path never skips silently: any reason it cannot run lands in
	// Report.Delta.Fallback and the full overwrite runs instead.
	useDelta := false
	if opts.Delta {
		rep.Delta.Enabled = true
		limit := opts.DeltaMaxRewrite
		if limit <= 0 {
			limit = p.dynCount / 4
			if limit < len(p.nonceSet) {
				limit = len(p.nonceSet)
			}
		}
		switch {
		case caps&protocol.CapScan == 0:
			rep.Delta.Fallback = "capability"
		case !opts.DeltaWarm:
			rep.Delta.Fallback = "cold"
		case len(p.nonceSet) > limit:
			rep.Delta.Fallback = "threshold"
		default:
			if err := p.deltaScan(sess, opts, rep, windowed, &rawB, &wireB); err != nil {
				return nil, err
			}
			trc("command: Scan(frame_%d..frame_%d)  [%d frames probed, %d drifted]",
				p.dynFirst, p.dynLast, rep.Delta.FramesScanned, len(rep.Delta.Unexpected))
			if opts.Span != nil {
				opts.Span.Event("delta-scan", p.dynFirst, 0,
					fmt.Sprintf("%d frames probed, %d drifted", rep.Delta.FramesScanned, len(rep.Delta.Unexpected)))
			}
			if len(rep.Delta.Unexpected) > 0 {
				rep.Delta.Fallback = "mismatch"
			} else {
				useDelta = true
			}
		}
	}
	if useDelta {
		rep.Delta.Applied = true
		steps, op := p.deltaSteps, "ICAP_config_delta"
		if useCompress {
			steps, op = p.deltaStepsC, "ICAP_config_delta_c"
		}
		if err := sendConfigs(steps, op, useCompress); err != nil {
			return nil, err
		}
		rep.Delta.FramesRewritten = rep.FramesConfigured
		rep.Delta.FramesSkipped = p.dynCount - rep.Delta.FramesRewritten
		trc("command: delta rewrite  [%d of %d frames rewritten, %d proven clean and skipped]",
			rep.Delta.FramesRewritten, p.dynCount, rep.Delta.FramesSkipped)
		if opts.Span != nil {
			opts.Span.Event("delta-applied", -1, 0,
				fmt.Sprintf("%d of %d frames rewritten, %d skipped",
					rep.Delta.FramesRewritten, p.dynCount, rep.Delta.FramesSkipped))
		}
	} else {
		if rep.Delta.Enabled {
			trc("delta: falling back to full overwrite (%s)", rep.Delta.Fallback)
			if opts.Span != nil {
				opts.Span.Event("delta-fallback", -1, 0, rep.Delta.Fallback)
			}
		}
		configs, op := p.configs, "ICAP_config"
		if useCompress {
			configs, op = p.configsC, "ICAP_config_batch_c"
		}
		if err := sendConfigs(configs, op, useCompress); err != nil {
			return nil, err
		}
		trc("command: ICAP_config(frame_%d..frame_%d)  [%d frames, DynMem overwritten]",
			p.dynFirst, p.dynLast, p.dynCount)
	}
	tConfig := time.Now()

	// Optional CAPTURE extension: clock the application deterministically
	// before reading back. The matching prediction was computed at plan
	// build and sits in p.expected.
	if p.appStepWire != nil {
		resp, err := sess.exchange(p.appStepWire, "App_step", true)
		if err != nil {
			return nil, err
		}
		if resp.Type != protocol.MsgAck {
			return nil, fmt.Errorf("verifier: AppStep answered with %v (%s)", resp.Type, resp.Err)
		}
		trc("command: App_step(%d)", p.appSteps)
	}

	// Phase 2: full configuration readback in the plan's validated
	// order, with the comparison folded in — the order is a bijection,
	// so each frame is judged exactly once as it arrives (lockstep) or as
	// the window delivers it back in plan order (pipelined).
	if windowed {
		cmds := make([]windowCmd, len(p.order))
		for k, idx := range p.order {
			cmds[k] = windowCmd{enc: p.readbacks[k], op: fmt.Sprintf("ICAP_readback(%d)", idx)}
		}
		err := sess.runWindow(cmds, opts.Retry.windowSize(), func(k int, resp *protocol.Message) error {
			if opts.Timeline != nil {
				opts.Timeline.Add("vrf-sw", timing.VrfReadbackOverhead())
			}
			return absorbFrame(p.order[k], resp)
		})
		if err != nil {
			return nil, err
		}
	} else {
		for k, idx := range p.order {
			if opts.Timeline != nil {
				opts.Timeline.Add("vrf-sw", timing.VrfReadbackOverhead())
			}
			resp, err := sess.exchange(p.readbacks[k], fmt.Sprintf("ICAP_readback(%d)", idx), true)
			if err != nil {
				return nil, err
			}
			if err := absorbFrame(idx, resp); err != nil {
				return nil, err
			}
		}
	}
	trc("command: ICAP_readback(%d)..ICAP_readback(%d)  [%d frames, order offset %d mod %d]",
		p.order[0], p.order[len(p.order)-1], len(p.order), p.order[0], p.geo.NumFrames())
	tReadback := time.Now()

	// Phase 3: checksum.
	if p.signatureMode {
		resp, err := sess.exchange(p.checksumWire, "Sig_checksum", true)
		if err != nil {
			return nil, err
		}
		if resp.Type != protocol.MsgSigValue {
			return nil, fmt.Errorf("verifier: Sig_checksum answered with %v (%s)", resp.Type, resp.Err)
		}
		rep.MACOK = opts.SigVerifier.Verify(transcript.Digest(), resp.Sig)
		trc("command: Sig_checksum  ->  signature %d bytes, valid=%v", len(resp.Sig), rep.MACOK)
	} else {
		resp, err := sess.exchange(p.checksumWire, "MAC_checksum", true)
		if err != nil {
			return nil, err
		}
		if resp.Type != protocol.MsgMACValue {
			return nil, fmt.Errorf("verifier: MAC_checksum answered with %v (%s)", resp.Type, resp.Err)
		}
		rep.HVrf = mac.Sum()
		rep.MACOK = cmac.Equal(resp.MAC, rep.HVrf)
		trc("command: MAC_checksum  ->  H_Prv == H_Vrf: %v", rep.MACOK)
		if opts.Events != nil {
			opts.Events.Add(trace.KindChecksum, -1,
				p.model.ActionTime(timing.A9)+p.model.ActionTime(timing.A7), "finalize")
			opts.Events.Add(trace.KindMACValue, -1, p.model.ActionTime(timing.A10),
				fmt.Sprintf("H_Prv == H_Vrf: %v", rep.MACOK))
		}
	}

	tChecksum := time.Now()

	// Phase 4: verdict. The comparison already happened frame by frame;
	// mismatches are reported in ascending frame order regardless of the
	// readback permutation.
	sort.Ints(rep.Mismatches)
	rep.ConfigOK = len(rep.Mismatches) == 0
	trc("verdict: B_Prv == B_Vrf: %v  (%d mismatching frames)", rep.ConfigOK, len(rep.Mismatches))

	rep.Accepted = rep.MACOK && rep.ConfigOK
	end := time.Now()
	rep.Phases = PhaseBreakdown{
		Config:   tConfig.Sub(start),
		Readback: tReadback.Sub(tConfig),
		Checksum: tChecksum.Sub(tReadback),
		Verdict:  end.Sub(tChecksum),
	}
	rep.Elapsed = end.Sub(start)
	if sp := opts.Span; sp != nil {
		// Phase children telescope over the same checkpoints as
		// rep.Phases, so their durations sum to exactly rep.Elapsed — the
		// invariant the flight-recorder e2e test pins.
		sp.ChildSpanAt("phase:config", start, tConfig)
		sp.ChildSpanAt("phase:readback", tConfig, tReadback)
		sp.ChildSpanAt("phase:checksum", tReadback, tChecksum)
		sp.ChildSpanAt("phase:verdict", tChecksum, end)
		sp.SetTag("retries", strconv.Itoa(rep.Retries))
		sp.SetTag("transport_faults", strconv.Itoa(rep.TransportFaults))
		if opts.Retry.Window > 1 {
			sp.SetTag("window", strconv.Itoa(opts.Retry.Window))
		}
		if wireB > 0 {
			sp.Event("transport", -1, 0,
				fmt.Sprintf("raw=%dB wire=%dB retries=%d faults=%d",
					rawB, wireB, rep.Retries, rep.TransportFaults))
		}
	}
	if wireB > 0 {
		mCompressRawBytes.Add(uint64(rawB))
		mCompressWireBytes.Add(uint64(wireB))
		mCompressRatio.Observe(float64(rawB) / float64(wireB))
	}
	recordRun(rep)
	return rep, nil
}

// deltaScan runs the delta-mode probe phase: read back every dynamic
// frame raw (MAC-free) and compare it against the plan's predicted
// post-configuration readback. Frames outside the nonce set that differ
// land in rep.Delta.Unexpected — the caller falls back to the full
// overwrite when that list is non-empty.
func (p *Plan) deltaScan(sess *session, opts RunOpts, rep *Report, windowed bool, rawB, wireB *int) error {
	handle := func(k int, resp *protocol.Message) error {
		ss := p.scanSteps[k]
		if resp.Type != protocol.MsgScanData {
			return fmt.Errorf("verifier: Scan(%d..) answered with %v (%s)", ss.frames[0], resp.Type, resp.Err)
		}
		if len(resp.Frames) != len(ss.frames) {
			return fmt.Errorf("verifier: scan answered for %d frames, asked %d", len(resp.Frames), len(ss.frames))
		}
		want := len(ss.frames) * device.FrameWords
		words, err := compress.DecodeBounded(resp.Comp, want)
		if err != nil {
			return fmt.Errorf("verifier: scan data: %w", err)
		}
		if len(words) != want {
			return fmt.Errorf("verifier: scan data carries %d words, want %d", len(words), want)
		}
		*rawB += want * 4
		*wireB += len(resp.Comp)
		for j, f := range ss.frames {
			if resp.Frames[j] != uint32(f) {
				return fmt.Errorf("verifier: scan answered frame %d at position %d, asked %d", resp.Frames[j], j, f)
			}
			got := words[j*device.FrameWords : (j+1)*device.FrameWords]
			exp := p.scanExpected[f]
			rep.Delta.FramesScanned++
			for w := range got {
				if got[w] != exp[w] {
					if !p.nonceSet[f] {
						rep.Delta.Unexpected = append(rep.Delta.Unexpected, f)
					}
					break
				}
			}
		}
		return nil
	}
	if windowed {
		cmds := make([]windowCmd, len(p.scanSteps))
		for k, ss := range p.scanSteps {
			cmds[k] = windowCmd{enc: ss.wire, op: fmt.Sprintf("Scan(%d..)", ss.frames[0])}
		}
		return sess.runWindow(cmds, opts.Retry.windowSize(), handle)
	}
	for k, ss := range p.scanSteps {
		resp, err := sess.exchange(ss.wire, fmt.Sprintf("Scan(%d..)", ss.frames[0]), true)
		if err != nil {
			return err
		}
		if err := handle(k, resp); err != nil {
			return err
		}
	}
	return nil
}

// recordRun publishes one completed run into the metric families: the
// per-phase and end-to-end latency histograms, the verdict counter and
// the frame totals.
func recordRun(rep *Report) {
	mPhaseSeconds.With(PhaseConfig).ObserveDuration(rep.Phases.Config)
	mPhaseSeconds.With(PhaseReadback).ObserveDuration(rep.Phases.Readback)
	mPhaseSeconds.With(PhaseChecksum).ObserveDuration(rep.Phases.Checksum)
	mPhaseSeconds.With(PhaseVerdict).ObserveDuration(rep.Phases.Verdict)
	mRunSeconds.ObserveDuration(rep.Elapsed)
	verdict := "rejected"
	if rep.Accepted {
		verdict = "accepted"
	}
	mRuns.With(verdict).Inc()
	mFramesRead.Add(uint64(rep.FramesRead))
	mFramesConfigured.Add(uint64(rep.FramesConfigured))
	if rep.Delta.Enabled {
		mFramesScanned.Add(uint64(rep.Delta.FramesScanned))
		mFramesRewritten.Add(uint64(rep.Delta.FramesRewritten))
		mFramesSkipped.Add(uint64(rep.Delta.FramesSkipped))
		if rep.Delta.Fallback != "" {
			mDeltaFallbacks.With(rep.Delta.Fallback).Inc()
		}
	}
}

// appendFrameBytes serialises frame words into dst (big-endian, matching
// the prover) and returns the extended slice. Callers reuse one scratch
// buffer across frames; both MAC and transcript copy what they absorb.
func appendFrameBytes(dst []byte, words []uint32) []byte {
	for _, w := range words {
		dst = append(dst, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	return dst
}
