package attestation

import (
	"fmt"
	"io"
	"sort"
	"time"

	"sacha/internal/channel"
	"sacha/internal/cmac"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/protocol"
	"sacha/internal/signature"
	"sacha/internal/sim"
	"sacha/internal/timing"
	"sacha/internal/trace"
)

// RunOpts are the per-session inputs of one attestation: everything that
// must NOT be shared across devices. The MAC key and the CMAC/transcript
// state derived from it are per device (each fleet member has its own
// enrolled key), the retry session is per connection, and the trace
// sinks are per caller.
type RunOpts struct {
	// Key is the enrolled MAC key (from the PUF enrollment database).
	Key [16]byte
	// SigVerifier checks signature-mode responses; required when the
	// plan was built with SignatureMode.
	SigVerifier *signature.Verifier
	// Retry, when enabled, runs the protocol over the reliable
	// transport. The zero value speaks the paper's bare protocol.
	// Retry.Window > 1 additionally pipelines the configuration and
	// readback phases with up to Window outstanding frames.
	Retry RetryPolicy
	// Trace, if non-nil, receives a Fig. 9-style protocol trace.
	Trace io.Writer
	// Events, if non-nil, records every protocol step with its modelled
	// duration (the machine-readable Fig. 9).
	Events *trace.Log
	// Timeline, if non-nil, accumulates verifier-side software time.
	// sim.Timeline is not concurrency-safe: concurrent Runs must use
	// distinct timelines (or nil).
	Timeline *sim.Timeline
}

// PhaseBreakdown splits one run's wall time across the protocol
// phases. The boundaries are contiguous — config ends where readback
// begins (the CAPTURE App_step, when used, is charged to readback) —
// so the four durations sum to Elapsed up to clock granularity.
type PhaseBreakdown struct {
	// Config is the dynamic-configuration phase (paper actions A1–A2).
	Config time.Duration
	// Readback covers frame readback, MAC absorption and sendback
	// (A3–A8), plus the optional App_step.
	Readback time.Duration
	// Checksum is the MAC/signature finalisation exchange (A9–A10).
	Checksum time.Duration
	// Verdict is the verifier-side comparison close-out.
	Verdict time.Duration
}

// Sum returns the total of the four phases.
func (p PhaseBreakdown) Sum() time.Duration {
	return p.Config + p.Readback + p.Checksum + p.Verdict
}

// Report is the outcome of one attestation.
type Report struct {
	// MACOK: H_Prv equals H_Vrf (frames authentic and untampered in
	// transit). In signature mode this is the signature check.
	MACOK bool
	// HVrf is the verifier-side MAC tag computed over the received
	// frames in plan order (zero in signature mode). It is exposed so
	// determinism across transport configurations — window sizes, fault
	// recovery — is directly observable: any reordering leak into the
	// MAC absorption would change this value.
	HVrf [16]byte
	// ConfigOK: masked received bitstream equals masked golden bitstream.
	ConfigOK bool
	// Accepted is the overall verdict.
	Accepted bool
	// Mismatches lists frame indices whose masked content differed.
	Mismatches []int
	// FramesConfigured and FramesRead count protocol actions.
	FramesConfigured, FramesRead int
	// Retries counts message re-sends by the reliable transport; zero on
	// a clean link. TransportFaults counts received messages that were
	// discarded (corrupted envelopes, stale duplicates). Together they
	// make link flakiness observable and distinguishable from a MAC
	// rejection.
	Retries, TransportFaults int
	// Phases is the per-phase wall-time breakdown of this run; Elapsed
	// is the end-to-end wall time. The phases are contiguous, so
	// Phases.Sum() equals Elapsed up to clock granularity.
	Phases  PhaseBreakdown
	Elapsed time.Duration
}

// Run drives the full SACHa protocol of Fig. 9 against the prover at the
// other end of ep, using only the plan's precomputed artifacts: no
// fabric access, no prediction, no message encoding happens here. One
// Plan may serve any number of concurrent Runs.
//
// With Retry.Window > 1 the configuration and readback phases run
// pipelined: up to Window sequence envelopes stay outstanding and
// responses are re-ordered into plan order before the CMAC/transcript
// absorbs them, so the verdict and H_Vrf are independent of the window
// size and of any transport reordering.
func (p *Plan) Run(ep channel.Endpoint, opts RunOpts) (_ *Report, err error) {
	start := time.Now()
	defer func() {
		if err != nil {
			mRuns.With("error").Inc()
		}
	}()
	trc := func(format string, args ...any) {
		if opts.Trace != nil {
			fmt.Fprintf(opts.Trace, format+"\n", args...)
		}
	}
	rep := &Report{}
	if p.signatureMode && opts.SigVerifier == nil {
		return nil, fmt.Errorf("verifier: signature mode without an enrolled public key")
	}
	sess := newSession(ep, opts.Retry, rep)
	defer sess.close()

	mac, err := cmac.New(opts.Key[:])
	if err != nil {
		return nil, err
	}
	transcript := signature.NewTranscript()
	// One scratch buffer serves every frame serialisation of the Run:
	// cmac.Update and Transcript.Absorb both copy, so reusing the bytes
	// avoids 28k+ allocations on the large geometries.
	scratch := make([]byte, 0, device.FrameWords*4)

	// noteConfig records the per-packet effects of one delivered
	// configuration step; absorbFrame does the same for one read-back
	// frame, folding it into the MAC, the transcript and the golden
	// comparison. Both are shared by the lockstep and windowed paths and
	// are always invoked in plan order.
	noteConfig := func(cs configStep) {
		if opts.Timeline != nil {
			opts.Timeline.Add("vrf-sw", timing.VrfConfigOverhead())
		}
		if opts.Events != nil {
			opts.Events.Add(trace.KindConfig, cs.first,
				p.model.ActionTime(timing.A1)+p.model.ActionTime(timing.A2), "")
		}
		rep.FramesConfigured += cs.count
	}
	absorbFrame := func(idx int, resp *protocol.Message) error {
		if resp.Type != protocol.MsgFrameData {
			return fmt.Errorf("verifier: readback of frame %d answered with %v (%s)", idx, resp.Type, resp.Err)
		}
		if resp.FrameIndex != uint32(idx) {
			return fmt.Errorf("verifier: asked for frame %d, got %d", idx, resp.FrameIndex)
		}
		scratch = appendFrameBytes(scratch[:0], resp.Words)
		mac.Update(scratch)
		transcript.Absorb(scratch)
		rep.FramesRead++
		if opts.Events != nil {
			opts.Events.Add(trace.KindReadback, idx,
				p.model.ActionTime(timing.A3)+p.model.ActionTime(timing.A4)+p.model.ActionTime(timing.A6), "")
			opts.Events.Add(trace.KindFrameData, idx, p.model.ActionTime(timing.A8), "frame sendback")
		}
		got := resp.Words
		if p.mask != nil {
			got = fabric.ApplyMask(resp.Words, p.mask.Frame(idx))
		}
		want := p.expected[idx]
		for w := range got {
			if got[w] != want[w] {
				rep.Mismatches = append(rep.Mismatches, idx)
				break
			}
		}
		return nil
	}

	windowed := sess.reliable() && opts.Retry.windowSize() > 1

	// Phase 1: dynamic configuration — the verifier overwrites the
	// entire DynMem (bounded-memory model) with the plan's pre-encoded
	// packets. In windowed mode the first packet still goes lockstep: the
	// prover pins its sequence base on the first envelope of the session,
	// so that one must not race a reordered burst.
	lockstepConfigs := p.configs
	if windowed && len(p.configs) > 1 {
		lockstepConfigs = p.configs[:1]
	}
	for _, cs := range lockstepConfigs {
		if err := sess.sendConfig(cs.wire, fmt.Sprintf("ICAP_config(%d)", cs.first)); err != nil {
			return nil, err
		}
		noteConfig(cs)
	}
	if windowed && len(p.configs) > 1 {
		rest := p.configs[1:]
		cmds := make([]windowCmd, len(rest))
		for k, cs := range rest {
			cmds[k] = windowCmd{enc: cs.wire, op: fmt.Sprintf("ICAP_config(%d)", cs.first)}
		}
		err := sess.runWindow(cmds, opts.Retry.windowSize(), func(k int, resp *protocol.Message) error {
			if resp.Type != protocol.MsgAck {
				return fmt.Errorf("verifier: %s answered with %v (%s)", cmds[k].op, resp.Type, resp.Err)
			}
			noteConfig(rest[k])
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	trc("command: ICAP_config(frame_%d..frame_%d)  [%d frames, DynMem overwritten]",
		p.dynFirst, p.dynLast, p.dynCount)
	tConfig := time.Now()

	// Optional CAPTURE extension: clock the application deterministically
	// before reading back. The matching prediction was computed at plan
	// build and sits in p.expected.
	if p.appStepWire != nil {
		resp, err := sess.exchange(p.appStepWire, "App_step", true)
		if err != nil {
			return nil, err
		}
		if resp.Type != protocol.MsgAck {
			return nil, fmt.Errorf("verifier: AppStep answered with %v (%s)", resp.Type, resp.Err)
		}
		trc("command: App_step(%d)", p.appSteps)
	}

	// Phase 2: full configuration readback in the plan's validated
	// order, with the comparison folded in — the order is a bijection,
	// so each frame is judged exactly once as it arrives (lockstep) or as
	// the window delivers it back in plan order (pipelined).
	if windowed {
		cmds := make([]windowCmd, len(p.order))
		for k, idx := range p.order {
			cmds[k] = windowCmd{enc: p.readbacks[k], op: fmt.Sprintf("ICAP_readback(%d)", idx)}
		}
		err := sess.runWindow(cmds, opts.Retry.windowSize(), func(k int, resp *protocol.Message) error {
			if opts.Timeline != nil {
				opts.Timeline.Add("vrf-sw", timing.VrfReadbackOverhead())
			}
			return absorbFrame(p.order[k], resp)
		})
		if err != nil {
			return nil, err
		}
	} else {
		for k, idx := range p.order {
			if opts.Timeline != nil {
				opts.Timeline.Add("vrf-sw", timing.VrfReadbackOverhead())
			}
			resp, err := sess.exchange(p.readbacks[k], fmt.Sprintf("ICAP_readback(%d)", idx), true)
			if err != nil {
				return nil, err
			}
			if err := absorbFrame(idx, resp); err != nil {
				return nil, err
			}
		}
	}
	trc("command: ICAP_readback(%d)..ICAP_readback(%d)  [%d frames, order offset %d mod %d]",
		p.order[0], p.order[len(p.order)-1], len(p.order), p.order[0], p.geo.NumFrames())
	tReadback := time.Now()

	// Phase 3: checksum.
	if p.signatureMode {
		resp, err := sess.exchange(p.checksumWire, "Sig_checksum", true)
		if err != nil {
			return nil, err
		}
		if resp.Type != protocol.MsgSigValue {
			return nil, fmt.Errorf("verifier: Sig_checksum answered with %v (%s)", resp.Type, resp.Err)
		}
		rep.MACOK = opts.SigVerifier.Verify(transcript.Digest(), resp.Sig)
		trc("command: Sig_checksum  ->  signature %d bytes, valid=%v", len(resp.Sig), rep.MACOK)
	} else {
		resp, err := sess.exchange(p.checksumWire, "MAC_checksum", true)
		if err != nil {
			return nil, err
		}
		if resp.Type != protocol.MsgMACValue {
			return nil, fmt.Errorf("verifier: MAC_checksum answered with %v (%s)", resp.Type, resp.Err)
		}
		rep.HVrf = mac.Sum()
		rep.MACOK = cmac.Equal(resp.MAC, rep.HVrf)
		trc("command: MAC_checksum  ->  H_Prv == H_Vrf: %v", rep.MACOK)
		if opts.Events != nil {
			opts.Events.Add(trace.KindChecksum, -1,
				p.model.ActionTime(timing.A9)+p.model.ActionTime(timing.A7), "finalize")
			opts.Events.Add(trace.KindMACValue, -1, p.model.ActionTime(timing.A10),
				fmt.Sprintf("H_Prv == H_Vrf: %v", rep.MACOK))
		}
	}

	tChecksum := time.Now()

	// Phase 4: verdict. The comparison already happened frame by frame;
	// mismatches are reported in ascending frame order regardless of the
	// readback permutation.
	sort.Ints(rep.Mismatches)
	rep.ConfigOK = len(rep.Mismatches) == 0
	trc("verdict: B_Prv == B_Vrf: %v  (%d mismatching frames)", rep.ConfigOK, len(rep.Mismatches))

	rep.Accepted = rep.MACOK && rep.ConfigOK
	end := time.Now()
	rep.Phases = PhaseBreakdown{
		Config:   tConfig.Sub(start),
		Readback: tReadback.Sub(tConfig),
		Checksum: tChecksum.Sub(tReadback),
		Verdict:  end.Sub(tChecksum),
	}
	rep.Elapsed = end.Sub(start)
	recordRun(rep)
	return rep, nil
}

// recordRun publishes one completed run into the metric families: the
// per-phase and end-to-end latency histograms, the verdict counter and
// the frame totals.
func recordRun(rep *Report) {
	mPhaseSeconds.With(PhaseConfig).ObserveDuration(rep.Phases.Config)
	mPhaseSeconds.With(PhaseReadback).ObserveDuration(rep.Phases.Readback)
	mPhaseSeconds.With(PhaseChecksum).ObserveDuration(rep.Phases.Checksum)
	mPhaseSeconds.With(PhaseVerdict).ObserveDuration(rep.Phases.Verdict)
	mRunSeconds.ObserveDuration(rep.Elapsed)
	verdict := "rejected"
	if rep.Accepted {
		verdict = "accepted"
	}
	mRuns.With(verdict).Inc()
	mFramesRead.Add(uint64(rep.FramesRead))
	mFramesConfigured.Add(uint64(rep.FramesConfigured))
}

// appendFrameBytes serialises frame words into dst (big-endian, matching
// the prover) and returns the extended slice. Callers reuse one scratch
// buffer across frames; both MAC and transcript copy what they absorb.
func appendFrameBytes(dst []byte, words []uint32) []byte {
	for _, w := range words {
		dst = append(dst, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	return dst
}
