package attestation

import (
	"errors"
	"time"

	"sacha/internal/channel"
	"sacha/internal/protocol"
)

// windowCmd is one pre-encoded command queued for a pipelined phase.
type windowCmd struct {
	enc []byte
	op  string
}

// runWindow drives a sliding-window pipelined exchange of cmds over the
// reliable transport: up to window sequence envelopes stay outstanding,
// responses are matched by sequence number whatever order they arrive in,
// and deliver is invoked strictly in cmds order — the correctness
// invariant of the readback phase, where the CMAC and the transcript are
// order-sensitive. Each outstanding sequence runs its own retry timer, so
// a single dropped frame re-sends only that frame instead of stalling the
// whole pipe.
//
// The first envelope of a session must already have been exchanged in
// lockstep before runWindow is used: the prover pins its sequence base on
// the first envelope it sees, and a reordered opening burst could
// otherwise pin the base past outstanding commands.
func (s *session) runWindow(cmds []windowCmd, window int, deliver func(k int, resp *protocol.Message) error) error {
	if len(cmds) == 0 {
		return nil
	}
	if window > MaxWindow {
		window = MaxWindow
	}
	if window > len(cmds) {
		window = len(cmds)
	}
	if window < 1 {
		window = 1
	}

	type entry struct {
		seq      uint32
		wire     []byte
		op       string
		attempts int
		deadline time.Time
		resp     *protocol.Message
		got      bool
		lastErr  error
	}
	entries := make([]entry, len(cmds))
	pending := make(map[uint32]int, window)
	maxAttempts := s.pol.MaxRetries + 1

	// sendEntry ships (or re-ships) one envelope and arms its retry
	// timer. A transient send failure is treated like a lost message: the
	// entry's deadline is pulled in so the timer path re-sends it soon.
	sendEntry := func(i int, resend bool) error {
		e := &entries[i]
		if e.attempts >= maxAttempts {
			err := e.lastErr
			if err == nil {
				err = channel.ErrTimeout
			}
			return &TransportError{Op: e.op, Attempts: e.attempts, Err: err}
		}
		e.attempts++
		if resend {
			s.noteRetry()
		}
		if err := s.ep.Send(e.wire); err != nil {
			e.lastErr = err
			if errors.Is(err, channel.ErrClosed) || errors.Is(err, channel.ErrReset) {
				return &TransportError{Op: e.op, Attempts: e.attempts, Err: err}
			}
			e.deadline = time.Now().Add(s.pol.Backoff)
			return nil
		}
		e.lastErr = channel.ErrTimeout
		e.deadline = time.Now().Add(s.pol.Timeout)
		return nil
	}

	timer := time.NewTimer(time.Hour)
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	stopTimer()
	defer stopTimer()

	next, done := 0, 0 // next command to send; next response to deliver
	// The occupancy gauge tracks envelopes in flight across all
	// concurrent runs: +1 when a command first ships, -1 when its
	// response is delivered; the deferred settle drains whatever is
	// still outstanding when the run exits (success or error).
	defer func() { mWindowInflight.Add(int64(done - next)) }()
	for done < len(cmds) {
		for next < len(cmds) && next-done < window {
			e := &entries[next]
			s.seq++
			e.seq = s.seq
			wire, err := protocol.WrapReq(e.seq, cmds[next].enc).Encode()
			if err != nil {
				return err
			}
			e.wire = wire
			e.op = cmds[next].op
			pending[e.seq] = next
			if err := sendEntry(next, false); err != nil {
				return err
			}
			mWindowInflight.Inc()
			mWindowCmds.Inc()
			next++
		}
		if s.recvErr != nil {
			e := &entries[done]
			return &TransportError{Op: e.op, Attempts: e.attempts, Err: s.recvErr}
		}

		// Arm the timer for the earliest per-sequence retry deadline.
		var min time.Time
		for i := done; i < next; i++ {
			if entries[i].got {
				continue
			}
			if min.IsZero() || entries[i].deadline.Before(min) {
				min = entries[i].deadline
			}
		}
		wait := time.Until(min)
		if wait < 0 {
			wait = 0
		}
		timer.Reset(wait)

		select {
		case r := <-s.recvCh:
			stopTimer()
			if r.err != nil {
				s.recvErr = r.err
				e := &entries[done]
				return &TransportError{Op: e.op, Attempts: e.attempts, Err: r.err}
			}
			env, err := protocol.Decode(r.raw)
			if err != nil || env.Type != protocol.MsgSeqResp {
				s.noteFault()
				continue
			}
			i, ok := pending[env.Seq]
			if !ok {
				// A stale duplicate of an already-delivered sequence, or
				// garbage with a well-formed envelope.
				s.noteFault()
				continue
			}
			inner, err := protocol.Decode(env.Inner)
			if err != nil {
				s.noteFault()
				continue
			}
			entries[i].resp = inner
			entries[i].got = true
			delete(pending, env.Seq)
			// Reorder arrivals into plan order: deliver every response
			// that is now contiguous with the delivery cursor.
			for done < next && entries[done].got {
				if err := deliver(done, entries[done].resp); err != nil {
					return err
				}
				entries[done].resp = nil
				done++
				mWindowInflight.Dec()
			}

		case now := <-timer.C:
			for i := done; i < next; i++ {
				e := &entries[i]
				if e.got || e.deadline.After(now) {
					continue
				}
				mTimeouts.Inc()
				if err := sendEntry(i, true); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
