// Delta-mode and compressed-transport tests: the delta configuration
// path must be observationally identical to the full overwrite — same
// verdict, same H_Vrf, bit for bit — and must fall back to the full
// overwrite (never silently skip) whenever it cannot prove the device
// already holds the golden configuration.
package attestation_test

import (
	"testing"

	"sacha/internal/attestation"
	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
)

// persistentProver is a device that survives across attestation
// sessions, the way a fleet member does between sweeps: each connect
// opens a fresh transport session against the same fabric state.
type persistentProver struct {
	dev *prover.Device
}

func newPersistentProver(t testing.TB, geo *device.Geometry) *persistentProver {
	t.Helper()
	dev, err := prover.New(prover.Config{
		Geo:     geo,
		BootMem: core.BuildBootMem(geo, 0xD00D),
		Key:     runKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.PowerOn(); err != nil {
		t.Fatal(err)
	}
	return &persistentProver{dev: dev}
}

func (p *persistentProver) connect(t testing.TB) channel.Endpoint {
	t.Helper()
	vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
	go p.dev.Serve(prvEP)
	t.Cleanup(func() { vrfEP.Close() })
	return vrfEP
}

// buildDeltaPlans builds a delta+compress plan and a baseline plan from
// the same golden image, returning the dynamic frame list too.
func buildDeltaPlans(t testing.TB) (deltaPlan, basePlan *attestation.Plan, dyn []int) {
	t.Helper()
	geo := device.TinyLX()
	golden, dyn, err := core.BuildGolden(geo, netlist.Blinker(8), 0xD00D, 0xCAFEBABE)
	if err != nil {
		t.Fatal(err)
	}
	spec := attestation.Spec{Geo: geo, Golden: golden, DynFrames: dyn}
	if basePlan, err = attestation.NewPlan(spec); err != nil {
		t.Fatal(err)
	}
	spec.Delta, spec.Compress = true, true
	if deltaPlan, err = attestation.NewPlan(spec); err != nil {
		t.Fatal(err)
	}
	return deltaPlan, basePlan, dyn
}

func mustRun(t testing.TB, plan *attestation.Plan, ep channel.Endpoint, opts attestation.RunOpts) *attestation.Report {
	t.Helper()
	opts.Key = runKey
	rep, err := plan.Run(ep, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestDeltaRunMatchesFullOverwrite is the core equivalence: on a warm
// healthy device the delta path rewrites only the nonce frames yet
// produces the exact verdict and H_Vrf of a full overwrite on an
// identically prepared twin.
func TestDeltaRunMatchesFullOverwrite(t *testing.T) {
	deltaPlan, basePlan, _ := buildDeltaPlans(t)
	devA := newPersistentProver(t, deltaPlan.Geo())
	devB := newPersistentProver(t, deltaPlan.Geo())

	// Warm both twins with an identical full-overwrite attestation.
	warmA := mustRun(t, basePlan, devA.connect(t), attestation.RunOpts{})
	warmB := mustRun(t, basePlan, devB.connect(t), attestation.RunOpts{})
	if !warmA.Accepted || !warmB.Accepted {
		t.Fatalf("warm-up rejected: A=%+v B=%+v", warmA, warmB)
	}

	// Second round: delta on A, full overwrite on B.
	repA := mustRun(t, deltaPlan, devA.connect(t), attestation.RunOpts{Delta: true, DeltaWarm: true, Compress: true})
	repB := mustRun(t, basePlan, devB.connect(t), attestation.RunOpts{})

	if !repA.Accepted || !repB.Accepted {
		t.Fatalf("second round rejected: A=%+v B=%+v", repA, repB)
	}
	if repA.HVrf != repB.HVrf {
		t.Fatalf("delta H_Vrf %x differs from full-overwrite H_Vrf %x", repA.HVrf, repB.HVrf)
	}
	if !repA.Delta.Applied || repA.Delta.Fallback != "" {
		t.Fatalf("delta not applied: %+v", repA.Delta)
	}
	if !repA.Compressed {
		t.Fatal("compression not negotiated")
	}
	if repA.Delta.FramesRewritten == 0 || repA.Delta.FramesRewritten >= repB.FramesConfigured {
		t.Fatalf("delta rewrote %d of %d frames — expected a small non-zero rewrite set",
			repA.Delta.FramesRewritten, repB.FramesConfigured)
	}
	if repA.Delta.FramesScanned != repB.FramesConfigured {
		t.Fatalf("delta scanned %d frames, dynamic partition has %d", repA.Delta.FramesScanned, repB.FramesConfigured)
	}
	if got := repA.Delta.FramesRewritten + repA.Delta.FramesSkipped; got != repB.FramesConfigured {
		t.Fatalf("rewritten %d + skipped %d != %d dynamic frames",
			repA.Delta.FramesRewritten, repA.Delta.FramesSkipped, repB.FramesConfigured)
	}
	if repA.FramesConfigured != repA.Delta.FramesRewritten {
		t.Fatalf("FramesConfigured %d != FramesRewritten %d", repA.FramesConfigured, repA.Delta.FramesRewritten)
	}
}

// TestDeltaColdFallsBack: without the admissibility assertion the delta
// run must fall back to the full overwrite and still accept.
func TestDeltaColdFallsBack(t *testing.T) {
	deltaPlan, _, dyn := buildDeltaPlans(t)
	dev := newPersistentProver(t, deltaPlan.Geo())
	rep := mustRun(t, deltaPlan, dev.connect(t), attestation.RunOpts{Delta: true})
	if !rep.Accepted {
		t.Fatalf("cold fallback rejected: %+v", rep)
	}
	if rep.Delta.Applied || rep.Delta.Fallback != "cold" {
		t.Fatalf("cold device: %+v", rep.Delta)
	}
	if rep.FramesConfigured != len(dyn) {
		t.Fatalf("cold fallback configured %d frames, want the full %d-frame overwrite", rep.FramesConfigured, len(dyn))
	}
	if rep.Delta.FramesScanned != 0 || rep.Delta.FramesSkipped != 0 {
		t.Fatalf("cold fallback should skip the scan entirely: %+v", rep.Delta)
	}
}

// TestDeltaDriftFallsBack: a frame outside the nonce set that drifted
// (SEU, stale config, tamper) must force the full overwrite — and the
// overwrite must repair it, so the run still accepts with the drift
// recorded in the report.
func TestDeltaDriftFallsBack(t *testing.T) {
	deltaPlan, basePlan, dyn := buildDeltaPlans(t)
	dev := newPersistentProver(t, deltaPlan.Geo())
	if rep := mustRun(t, basePlan, dev.connect(t), attestation.RunOpts{}); !rep.Accepted {
		t.Fatalf("warm-up rejected: %+v", rep)
	}

	// Flip a configuration bit in a dynamic frame outside the nonce
	// rewrite set: a legitimate nonce-frame difference would be repaired
	// by the delta rewrite itself, so only non-nonce drift forces the
	// fallback.
	nonce := map[int]bool{}
	for _, f := range deltaPlan.DeltaRewriteFrames() {
		nonce[f] = true
	}
	tampered := -1
	for _, f := range dyn {
		if !nonce[f] {
			tampered = f
			break
		}
	}
	if tampered < 0 {
		t.Fatal("no non-nonce dynamic frame on this geometry")
	}
	dev.dev.Fabric.Mem.Frame(tampered)[3] ^= 1 << 7

	rep := mustRun(t, deltaPlan, dev.connect(t), attestation.RunOpts{Delta: true, DeltaWarm: true})
	if rep.Delta.Applied || rep.Delta.Fallback != "mismatch" {
		t.Fatalf("drifted device did not fall back: %+v", rep.Delta)
	}
	found := false
	for _, f := range rep.Delta.Unexpected {
		if f == tampered {
			found = true
		}
	}
	if !found {
		t.Fatalf("drifted frame %d not in Unexpected %v", tampered, rep.Delta.Unexpected)
	}
	if !rep.Accepted {
		t.Fatalf("fallback overwrite did not repair the drift: %+v", rep)
	}
}

// TestDeltaRequiresDeltaSpec: RunOpts.Delta against a plan built without
// Spec.Delta must fail loudly, not silently run a full overwrite.
func TestDeltaRequiresDeltaSpec(t *testing.T) {
	_, basePlan, _ := buildDeltaPlans(t)
	dev := newPersistentProver(t, basePlan.Geo())
	if _, err := basePlan.Run(dev.connect(t), attestation.RunOpts{Key: runKey, Delta: true}); err == nil {
		t.Fatal("RunOpts.Delta accepted on a plan built without Spec.Delta")
	}
	if _, err := basePlan.Run(dev.connect(t), attestation.RunOpts{Key: runKey, Compress: true}); err == nil {
		t.Fatal("RunOpts.Compress accepted on a plan built without Spec.Compress")
	}
}

// TestDeltaCaptureIncompatible: CAPTURE mode clocks the application
// after configuration; a skipped rewrite skips the flip-flop reset that
// the prediction assumes, so the spec must be rejected at build.
func TestDeltaCaptureIncompatible(t *testing.T) {
	geo := device.TinyLX()
	golden, dyn, err := core.BuildGolden(geo, netlist.Blinker(8), 0xD00D, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = attestation.NewPlan(attestation.Spec{
		Geo: geo, Golden: golden, DynFrames: dyn, Delta: true, AppSteps: 3,
	})
	if err == nil {
		t.Fatal("Delta+CAPTURE spec accepted")
	}
}

// TestCompressedRunMatchesPlain: the compressed wire encodings are pure
// transport — verdict and H_Vrf must be bit-identical to a plain run on
// an identically prepared twin.
func TestCompressedRunMatchesPlain(t *testing.T) {
	geo := device.TinyLX()
	golden, dyn, err := core.BuildGolden(geo, netlist.Blinker(8), 0xD00D, 0xFEED)
	if err != nil {
		t.Fatal(err)
	}
	compPlan, err := attestation.NewPlan(attestation.Spec{Geo: geo, Golden: golden, DynFrames: dyn, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	plainPlan, err := attestation.NewPlan(attestation.Spec{Geo: geo, Golden: golden, DynFrames: dyn})
	if err != nil {
		t.Fatal(err)
	}
	devA := newPersistentProver(t, geo)
	devB := newPersistentProver(t, geo)
	repA := mustRun(t, compPlan, devA.connect(t), attestation.RunOpts{Compress: true})
	repB := mustRun(t, plainPlan, devB.connect(t), attestation.RunOpts{})
	if !repA.Accepted || !repB.Accepted {
		t.Fatalf("rejected: comp=%+v plain=%+v", repA, repB)
	}
	if repA.HVrf != repB.HVrf {
		t.Fatalf("compressed H_Vrf %x differs from plain %x", repA.HVrf, repB.HVrf)
	}
	if !repA.Compressed || repB.Compressed {
		t.Fatalf("negotiation: comp=%v plain=%v", repA.Compressed, repB.Compressed)
	}
}
