package attestation

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"sacha/internal/fabric"
)

// noncePatchState is everything WithNonce needs to re-derive the
// nonce-dependent slice of a plan: the template bit positions, the
// affected frames, the configuration packets covering them, and the
// golden words of those frames at this plan's nonce. The template,
// frame list and step skeleton are shared across all patched variants
// of a plan (they are nonce-invariant); golden and nonce are per-plan.
type noncePatchState struct {
	bits    []fabric.NonceBitRef
	frames  []int       // affected frames, ascending
	frameAt map[int]int // frame index -> position in frames/golden
	steps   []patchStep
	golden  [][]uint32 // golden words of frames, at this plan's nonce
	nonce   uint64
}

// Patch-step targets: which pre-encoded packet slice of the plan a
// recorded step re-encodes into.
const (
	tgtConfig = iota // Plan.configs (full overwrite, plain)
	tgtConfigC       // Plan.configsC (full overwrite, compressed)
	tgtDelta         // Plan.deltaSteps (nonce-frame rewrite, plain)
	tgtDeltaC        // Plan.deltaStepsC (nonce-frame rewrite, compressed)
)

// patchStep names one pre-encoded configuration packet that carries at
// least one nonce-affected frame, with the frame list of the packet and
// nonce-invariant word copies for its frames outside the patch set
// (boundary batches mix application and nonce frames).
type patchStep struct {
	target int // tgtConfig/tgtConfigC/tgtDelta/tgtDeltaC
	index  int // index into the target slice
	frames []int
	words  [][]uint32 // parallel to frames; patch-set entries are overridden
}

// templateBits returns the nonce template of a patchable plan, nil when
// the plan is not nonce-patchable.
func (st *noncePatchState) templateBits() []fabric.NonceBitRef {
	if st == nil {
		return nil
	}
	return st.bits
}

// initNoncePatch computes the template, the affected frame set and the
// golden baseline for a patchable spec. Called by NewPlan before the
// configuration packets are encoded; recordPatchStep fills in the step
// skeleton as the packets are built.
func (p *Plan) initNoncePatch(spec Spec) error {
	refs, err := fabric.NonceTemplate(spec.Geo, spec.nonceBits())
	if err != nil {
		return err
	}
	inFrames := map[int]bool{}
	for _, ref := range refs {
		inFrames[ref.InitFrame] = true
		inFrames[ref.CapFrame] = true
	}
	dyn := map[int]bool{}
	for _, f := range spec.DynFrames {
		dyn[f] = true
	}
	for f := range inFrames {
		if !dyn[f] {
			return fmt.Errorf("attestation: nonce frame %d is not in the dynamic frame list — a patched nonce would never be configured", f)
		}
	}
	st := &noncePatchState{bits: refs, frameAt: make(map[int]int, len(inFrames))}
	for _, f := range spec.DynFrames { // transmission order, each frame once
		if !inFrames[f] {
			continue
		}
		if _, seen := st.frameAt[f]; seen {
			continue
		}
		st.frameAt[f] = len(st.frames)
		st.frames = append(st.frames, f)
		w := make([]uint32, len(spec.Golden.Frame(f)))
		copy(w, spec.Golden.Frame(f))
		st.golden = append(st.golden, w)
	}
	if st.nonce, err = fabric.ReadNonce(spec.Golden, refs); err != nil {
		return err
	}
	p.patch = st
	return nil
}

// recordPatchStep registers one just-encoded configuration packet with
// the patch state when it carries a nonce-affected frame.
func (p *Plan) recordPatchStep(spec Spec, target, index int, frames []int) {
	if p.patch == nil {
		return
	}
	hit := false
	for _, f := range frames {
		if _, ok := p.patch.frameAt[f]; ok {
			hit = true
			break
		}
	}
	if !hit {
		return
	}
	st := patchStep{target: target, index: index, frames: append([]int(nil), frames...)}
	for _, f := range frames {
		w := make([]uint32, len(spec.Golden.Frame(f)))
		copy(w, spec.Golden.Frame(f))
		st.words = append(st.words, w)
	}
	p.patch.steps = append(p.patch.steps, st)
}

// patchedArtifacts is the nonce-dependent slice of a plan re-derived
// for one nonce value.
type patchedArtifacts struct {
	golden       [][]uint32
	configs      []configStep
	configsC     []configStep
	deltaSteps   []configStep
	deltaStepsC  []configStep
	expected     [][]uint32
	scanExpected [][]uint32
}

// targetSlice maps a patch-step target tag to the artifact slice it
// re-encodes into.
func (art *patchedArtifacts) targetSlice(target int) []configStep {
	switch target {
	case tgtConfig:
		return art.configs
	case tgtConfigC:
		return art.configsC
	case tgtDelta:
		return art.deltaSteps
	default:
		return art.deltaStepsC
	}
}

// patchArtifacts re-derives the configuration packets and comparison
// frames a nonce change touches. Cost is O(nonce column + plan slice
// headers), never O(fabric): the untouched packets and frames are
// shared with the receiver by reference.
func (p *Plan) patchArtifacts(nonce uint64) (*patchedArtifacts, error) {
	st := p.patch
	art := &patchedArtifacts{
		golden:       make([][]uint32, len(st.frames)),
		configs:      make([]configStep, len(p.configs)),
		configsC:     make([]configStep, len(p.configsC)),
		deltaSteps:   make([]configStep, len(p.deltaSteps)),
		deltaStepsC:  make([]configStep, len(p.deltaStepsC)),
		expected:     make([][]uint32, len(p.expected)),
		scanExpected: make([][]uint32, len(p.scanExpected)),
	}
	copy(art.configs, p.configs)
	copy(art.configsC, p.configsC)
	copy(art.deltaSteps, p.deltaSteps)
	copy(art.deltaStepsC, p.deltaStepsC)
	copy(art.expected, p.expected)
	copy(art.scanExpected, p.scanExpected)

	// Golden words of the affected frames at the new nonce: the template
	// init bits are the only config bits that vary with the nonce value
	// (proven against the placer by TestNonceTemplateMatchesPlacement).
	for i := range st.frames {
		w := make([]uint32, len(st.golden[i]))
		copy(w, st.golden[i])
		art.golden[i] = w
	}
	for i, ref := range st.bits {
		j, ok := st.frameAt[ref.InitFrame]
		if !ok {
			return nil, fmt.Errorf("attestation: nonce bit %d init frame %d not in patch set", i, ref.InitFrame)
		}
		w := &art.golden[j][ref.InitWord]
		if nonce>>uint(i)&1 == 1 {
			*w |= ref.InitMask
		} else {
			*w &^= ref.InitMask
		}
	}

	// Comparison frames: plain mode masks the patched golden words;
	// CAPTURE mode additionally surfaces the held register state in the
	// capture bits — the nonce register holds (D=Q), so the captured
	// state is the nonce itself regardless of AppSteps.
	for j, f := range st.frames {
		if p.mask != nil {
			art.expected[f] = fabric.ApplyMask(art.golden[j], p.mask.Frame(f))
			continue
		}
		e := make([]uint32, len(art.golden[j]))
		copy(e, art.golden[j])
		art.expected[f] = e
	}
	if p.mask == nil {
		for i, ref := range st.bits {
			if _, ok := st.frameAt[ref.CapFrame]; !ok {
				return nil, fmt.Errorf("attestation: nonce bit %d capture frame %d not in patch set", i, ref.CapFrame)
			}
			e := art.expected[ref.CapFrame]
			if nonce>>uint(i)&1 == 1 {
				e[ref.CapWord] |= ref.CapMask
			} else {
				e[ref.CapWord] &^= ref.CapMask
			}
		}
	}

	// Raw scan expectation of a delta plan: a nonce bit appears twice in
	// the unmasked readback — as the stored init bit and as the captured
	// register state, which equals the init bit right after configuration
	// (the nonce register holds, D=Q). Patch both positions.
	if len(art.scanExpected) > 0 {
		patched := map[int]bool{}
		frame := func(f int) []uint32 {
			if !patched[f] {
				patched[f] = true
				w := make([]uint32, len(art.scanExpected[f]))
				copy(w, art.scanExpected[f])
				art.scanExpected[f] = w
			}
			return art.scanExpected[f]
		}
		for i, ref := range st.bits {
			iw, cw := frame(ref.InitFrame), frame(ref.CapFrame)
			if nonce>>uint(i)&1 == 1 {
				iw[ref.InitWord] |= ref.InitMask
				cw[ref.CapWord] |= ref.CapMask
			} else {
				iw[ref.InitWord] &^= ref.InitMask
				cw[ref.CapWord] &^= ref.CapMask
			}
		}
	}

	// Re-encode the configuration packets that carry affected frames.
	for _, step := range st.steps {
		compressed := step.target == tgtConfigC || step.target == tgtDeltaC
		wordsAt := func(k, _ int) []uint32 { return p.stepWords(art, step, k) }
		wire, err := encodeConfigPacket(step.frames, wordsAt, compressed)
		if err != nil {
			return nil, err
		}
		slot := art.targetSlice(step.target)
		old := slot[step.index]
		slot[step.index] = configStep{wire: wire, first: old.first, count: old.count}
	}
	return art, nil
}

// stepWords returns the golden words for the k-th frame of a patch
// step: the freshly patched words for frames in the patch set, the
// recorded nonce-invariant copy otherwise.
func (p *Plan) stepWords(art *patchedArtifacts, step patchStep, k int) []uint32 {
	if j, ok := p.patch.frameAt[step.frames[k]]; ok {
		return art.golden[j]
	}
	return step.words[k]
}

// verifyPatchBase re-derives the nonce-dependent artifacts at the
// plan's own built nonce and demands bit-identity with the cold build.
// Run once by NewPlan, it turns the patch path's assumptions (hold
// register, first-placed design, template layout) into a build-time
// check instead of a latent divergence.
func (p *Plan) verifyPatchBase() error {
	art, err := p.patchArtifacts(p.patch.nonce)
	if err != nil {
		return fmt.Errorf("attestation: patchable spec rejected: %w", err)
	}
	base := &patchedArtifacts{configs: p.configs, configsC: p.configsC, deltaSteps: p.deltaSteps, deltaStepsC: p.deltaStepsC}
	for _, step := range p.patch.steps {
		if !bytes.Equal(art.targetSlice(step.target)[step.index].wire, base.targetSlice(step.target)[step.index].wire) {
			return fmt.Errorf("attestation: patchable spec rejected: config packet %d/%d re-derives differently — nonce partition does not match the patch template", step.target, step.index)
		}
	}
	checkFrames := func(got, want [][]uint32, what string) error {
		for _, f := range p.patch.frames {
			a, b := got[f], want[f]
			if len(a) != len(b) {
				return fmt.Errorf("attestation: patchable spec rejected: %s frame %d length mismatch", what, f)
			}
			for w := range a {
				if a[w] != b[w] {
					return fmt.Errorf("attestation: patchable spec rejected: %s frame %d re-derives differently — nonce partition is not a held nonce register", what, f)
				}
			}
		}
		return nil
	}
	if err := checkFrames(art.expected, p.expected, "expected"); err != nil {
		return err
	}
	if len(p.scanExpected) > 0 {
		if err := checkFrames(art.scanExpected, p.scanExpected, "scan-expected"); err != nil {
			return err
		}
	}
	return nil
}

// WithNonce returns a plan identical to a cold build against the golden
// image for nonce — same pre-encoded packets, same comparison frames,
// bit for bit — derived in O(nonce column) by patching this plan's
// nonce-dependent slice. The receiver is never mutated: patched plans
// share every nonce-invariant artifact with it and are safe to derive
// and run concurrently. Only plans built from a PatchableNonce spec can
// be re-nonced.
func (p *Plan) WithNonce(nonce uint64) (*Plan, error) {
	if p.patch == nil {
		return nil, fmt.Errorf("attestation: plan was not built with Spec.PatchableNonce — rebuild, or mark the spec patchable")
	}
	start := time.Now()
	defer func() {
		mPlanPatches.Inc()
		mPlanPatchSeconds.ObserveDuration(time.Since(start))
	}()
	if nonce == p.patch.nonce {
		return p, nil
	}
	art, err := p.patchArtifacts(nonce)
	if err != nil {
		return nil, err
	}
	np := *p
	np.configs = art.configs
	np.configsC = art.configsC
	np.deltaSteps = art.deltaSteps
	np.deltaStepsC = art.deltaStepsC
	np.expected = art.expected
	np.scanExpected = art.scanExpected
	np.patch = &noncePatchState{
		bits:    p.patch.bits,
		frames:  p.patch.frames,
		frameAt: p.patch.frameAt,
		steps:   p.patch.steps,
		golden:  art.golden,
		nonce:   nonce,
	}
	return &np, nil
}

// Nonce returns the nonce this plan's artifacts encode, when the plan
// is nonce-patchable; ok is false for plans whose nonce is baked in.
func (p *Plan) Nonce() (nonce uint64, ok bool) {
	if p.patch == nil {
		return 0, false
	}
	return p.patch.nonce, true
}

// NoncePatchable reports whether WithNonce can re-nonce this plan.
func (p *Plan) NoncePatchable() bool { return p.patch != nil }

// Fingerprint hashes every artifact a Run consumes: the pre-encoded
// configuration, app-step, readback and checksum wires, the readback
// order, the comparison frames and the mask mode. Two plans with equal
// fingerprints drive byte-identical protocol sessions and apply the
// same acceptance predicate — the equivalence the differential tests
// assert between patched and cold-built plans.
func (p *Plan) Fingerprint() [32]byte {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	blob := func(b []byte) {
		put(uint64(len(b)))
		h.Write(b)
	}
	fmt.Fprintf(h, "%s|app:%d|sig:%t|mask:%t|", p.geo.Name, p.appSteps, p.signatureMode, p.mask != nil)
	steps := func(list []configStep) {
		put(uint64(len(list)))
		for _, cs := range list {
			put(uint64(cs.first))
			put(uint64(cs.count))
			blob(cs.wire)
		}
	}
	steps(p.configs)
	steps(p.configsC)
	steps(p.deltaSteps)
	steps(p.deltaStepsC)
	blob(p.helloWire)
	put(uint64(len(p.scanSteps)))
	for _, ss := range p.scanSteps {
		blob(ss.wire)
		put(uint64(len(ss.frames)))
		for _, f := range ss.frames {
			put(uint64(f))
		}
	}
	blob(p.appStepWire)
	put(uint64(len(p.order)))
	for _, idx := range p.order {
		put(uint64(idx))
	}
	for _, rb := range p.readbacks {
		blob(rb)
	}
	blob(p.checksumWire)
	wbuf := make([]byte, 0, 4*81)
	frameSet := func(set [][]uint32) {
		put(uint64(len(set)))
		for _, e := range set {
			put(uint64(len(e)))
			wbuf = wbuf[:0]
			for _, w := range e {
				wbuf = binary.BigEndian.AppendUint32(wbuf, w)
			}
			h.Write(wbuf)
		}
	}
	frameSet(p.expected)
	frameSet(p.scanExpected)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
