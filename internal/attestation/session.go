package attestation

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"sacha/internal/channel"
	"sacha/internal/protocol"
)

// RetryPolicy makes an attestation survive an unreliable transport. When
// enabled (Timeout > 0) the Run wraps every command in a sequence
// envelope (protocol.MsgSeqReq), waits up to Timeout for the matching
// response, and re-sends up to MaxRetries times with exponential backoff
// plus jitter. Re-sends are idempotent: the prover executes each sequence
// number at most once and replays the cached response for duplicates.
//
// The zero value disables the reliable transport entirely; the Run then
// speaks the paper's bare protocol and blocks on a lossy link.
type RetryPolicy struct {
	// Timeout bounds the wait for each response; it also switches the
	// reliable transport on.
	Timeout time.Duration
	// MaxRetries is the number of re-sends after the first attempt.
	MaxRetries int
	// Backoff is the sleep before the first re-send; it doubles each
	// retry up to MaxBackoff. Defaults to 5ms / 250ms when unset.
	Backoff, MaxBackoff time.Duration
	// Seed drives the backoff jitter.
	Seed int64
	// Window is the maximum number of enveloped commands kept outstanding
	// during the pipelined protocol phases (configuration and readback).
	// 0 or 1 reproduces the paper's lockstep exchange; larger values hide
	// the link round-trip behind up to Window in-flight frames. Values
	// beyond MaxWindow are clamped — the prover's reorder buffer and
	// response cache are sized for MaxWindow outstanding sequences.
	// Responses are re-ordered into plan order before the CMAC/transcript
	// absorbs them, so the window size never changes H_Vrf or the verdict.
	// Window only takes effect with the reliable transport (Timeout > 0).
	Window int
}

// MaxWindow caps RetryPolicy.Window. It must not exceed the prover's
// out-of-order bound (prover.SeqWindow): the prover buffers at most that
// many sequence numbers ahead of the next expected one, and its response
// cache must cover every request the verifier may still re-send.
const MaxWindow = 64

// windowSize returns the effective pipeline depth: at least 1, at most
// MaxWindow.
func (p RetryPolicy) windowSize() int {
	if p.Window <= 1 {
		return 1
	}
	if p.Window > MaxWindow {
		return MaxWindow
	}
	return p.Window
}

// Enabled reports whether the reliable transport is active.
func (p RetryPolicy) Enabled() bool { return p.Timeout > 0 }

// DefaultRetryPolicy is a reasonable starting point for a real network.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Timeout: 500 * time.Millisecond, MaxRetries: 6,
		Backoff: 10 * time.Millisecond, MaxBackoff: 250 * time.Millisecond}
}

// TransportError is the typed failure of the transport layer: the retry
// budget was exhausted (or, with retries disabled, a single exchange
// failed) without the protocol itself rejecting anything. It is how the
// verifier distinguishes "could not talk to the device" from "the device
// is compromised" — a fleet manager must never conflate the two.
type TransportError struct {
	// Op names the protocol step that failed, e.g. "ICAP_readback(17)".
	Op string
	// Attempts is how many sends were made before giving up.
	Attempts int
	// Err is the underlying cause (channel.ErrTimeout, io.EOF, ...).
	Err error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("verifier: transport failure at %s after %d attempt(s): %v", e.Op, e.Attempts, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// IsTransport reports whether err is (or wraps) a TransportError.
func IsTransport(err error) bool {
	var te *TransportError
	return errors.As(err, &te)
}

type recvResult struct {
	raw []byte
	err error
}

// session drives the message exchanges of one Run. In plain mode it
// reproduces the paper's lockstep protocol exactly; in reliable mode it
// adds the envelope, response matching, timeouts and retries. Commands
// arrive pre-encoded from the Plan, so the session never touches the
// message structs it ships.
type session struct {
	ep  channel.Endpoint
	pol RetryPolicy
	rep *Report

	seq       uint32
	rng       *rand.Rand
	recvCh    chan recvResult
	recvErr   error
	quit      chan struct{}
	closeOnce sync.Once
}

func newSession(ep channel.Endpoint, pol RetryPolicy, rep *Report) *session {
	s := &session{ep: ep, pol: pol, rep: rep}
	if !pol.Enabled() {
		return s
	}
	if s.pol.Backoff <= 0 {
		s.pol.Backoff = 5 * time.Millisecond
	}
	if s.pol.MaxBackoff < s.pol.Backoff {
		s.pol.MaxBackoff = 250 * time.Millisecond
		if s.pol.MaxBackoff < s.pol.Backoff {
			s.pol.MaxBackoff = s.pol.Backoff
		}
	}
	s.rng = rand.New(rand.NewSource(pol.Seed))
	s.recvCh = make(chan recvResult, 64)
	s.quit = make(chan struct{})
	// The pump decouples the blocking Endpoint.Recv from the timeout
	// select. It exits on the first receive error, which for every
	// transport here means the connection is gone for good; the error is
	// delivered once and remembered in recvErr. The quit select keeps a
	// Run that returns early (transport error, protocol rejection) from
	// leaking the pump: once recvCh fills, the send would otherwise block
	// forever with nobody left to drain it.
	go func() {
		for {
			raw, err := s.ep.Recv()
			select {
			case s.recvCh <- recvResult{raw: raw, err: err}:
			case <-s.quit:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return s
}

// close releases the receive pump. It is idempotent and safe on plain
// (pump-less) sessions; every Run must defer it so an early return cannot
// strand the pump on a full recvCh.
func (s *session) close() {
	if s.quit == nil {
		return
	}
	s.closeOnce.Do(func() { close(s.quit) })
}

// reliable reports whether the session wraps commands in envelopes.
func (s *session) reliable() bool { return s.pol.Enabled() }

// exchange ships one pre-encoded command and returns the prover's
// response message. wantResp is only consulted in plain mode, where
// ICAP_config has no response; in reliable mode every command is
// acknowledged.
func (s *session) exchange(enc []byte, op string, wantResp bool) (*protocol.Message, error) {
	if !s.reliable() {
		if err := s.ep.Send(enc); err != nil {
			return nil, &TransportError{Op: op, Attempts: 1, Err: err}
		}
		if !wantResp {
			return nil, nil
		}
		raw, err := s.ep.Recv()
		if err != nil {
			return nil, &TransportError{Op: op, Attempts: 1, Err: err}
		}
		resp, err := protocol.Decode(raw)
		if err != nil {
			return nil, &TransportError{Op: op, Attempts: 1, Err: err}
		}
		return resp, nil
	}

	s.seq++
	wire, err := protocol.WrapReq(s.seq, enc).Encode()
	if err != nil {
		return nil, err
	}
	attempts := s.pol.MaxRetries + 1
	var lastErr error = channel.ErrTimeout
	for a := 0; a < attempts; a++ {
		if a > 0 {
			s.noteRetry()
			s.sleepBackoff(a)
		}
		if s.recvErr != nil {
			// The connection is gone; further sends cannot be answered.
			return nil, &TransportError{Op: op, Attempts: a, Err: s.recvErr}
		}
		if err := s.ep.Send(wire); err != nil {
			lastErr = err
			continue
		}
		resp, err := s.await()
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if s.recvErr != nil || errors.Is(err, io.EOF) || errors.Is(err, channel.ErrClosed) || errors.Is(err, channel.ErrReset) {
			return nil, &TransportError{Op: op, Attempts: a + 1, Err: err}
		}
	}
	return nil, &TransportError{Op: op, Attempts: attempts, Err: lastErr}
}

// await waits for the response matching the current sequence number,
// discarding (and counting) everything else: corrupted envelopes, stale
// responses to earlier duplicates, unwrapped Error messages a prover
// emits for undecodable input.
func (s *session) await() (*protocol.Message, error) {
	timer := time.NewTimer(s.pol.Timeout)
	defer timer.Stop()
	for {
		select {
		case r := <-s.recvCh:
			if r.err != nil {
				s.recvErr = r.err
				return nil, r.err
			}
			env, err := protocol.Decode(r.raw)
			if err != nil || env.Type != protocol.MsgSeqResp || env.Seq != s.seq {
				s.noteFault()
				continue
			}
			resp, err := protocol.Decode(env.Inner)
			if err != nil {
				s.noteFault()
				continue
			}
			return resp, nil
		case <-timer.C:
			mTimeouts.Inc()
			return nil, channel.ErrTimeout
		}
	}
}

// noteRetry counts one message re-send in the per-run report and the
// process-wide transport metrics.
func (s *session) noteRetry() {
	s.rep.Retries++
	mRetries.Inc()
}

// noteFault counts one discarded incoming message (corrupt envelope,
// stale duplicate) in the per-run report and the process-wide metrics.
func (s *session) noteFault() {
	s.rep.TransportFaults++
	mTransportFaults.Inc()
}

// sleepBackoff sleeps before the attempt-th re-send: exponential from
// Backoff, capped at MaxBackoff, with jitter in [d/2, d) so a fleet of
// verifiers does not re-send in lockstep.
func (s *session) sleepBackoff(attempt int) {
	d := s.pol.Backoff
	for i := 1; i < attempt && d < s.pol.MaxBackoff; i++ {
		d *= 2
	}
	if d > s.pol.MaxBackoff {
		d = s.pol.MaxBackoff
	}
	if d > 1 {
		d = d/2 + time.Duration(s.rng.Int63n(int64(d/2)))
	}
	time.Sleep(d)
}

// sendConfig ships one pre-encoded configuration message. In plain mode
// it is fire-and-forget (the paper's protocol); in reliable mode the
// prover acknowledges it, so a dropped frame is re-sent instead of
// silently producing a mis-configured device and a false mismatch
// verdict.
func (s *session) sendConfig(enc []byte, op string) error {
	resp, err := s.exchange(enc, op, false)
	if err != nil {
		return err
	}
	if s.reliable() && resp.Type != protocol.MsgAck {
		return fmt.Errorf("verifier: %s answered with %v (%s)", op, resp.Type, resp.Err)
	}
	return nil
}
