package swarm

import (
	"context"
	"testing"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
	"sacha/internal/verifier"
)

func factory(id uint64) (*core.System, error) {
	return core.NewSystem(core.Config{
		Geo:        device.SmallLX(),
		App:        netlist.Blinker(8),
		KeyMode:    core.KeyStatPUF,
		DeviceID:   id,
		LabLatency: -1,
		Seed:       int64(id),
	})
}

// mustSweep and mustAttestAll run a sweep that the test expects to pass
// config validation; a validation error is a test bug, not a verdict.
func mustSweep(t testing.TB, f *Fleet, ctx context.Context, cfg SweepConfig, opts func(uint64) core.AttestOptions) *Report {
	t.Helper()
	rep, err := f.Sweep(ctx, cfg, opts)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	return rep
}

// mustSystem resolves a fleet member the test provisioned itself; a
// missing member is a test bug.
func mustSystem(t testing.TB, f *Fleet, id uint64) *core.System {
	t.Helper()
	sys, ok := f.System(id)
	if !ok {
		t.Fatalf("fleet has no device %d", id)
	}
	return sys
}

func mustAttestAll(t testing.TB, f *Fleet, parallel bool, opts func(uint64) core.AttestOptions) *Report {
	t.Helper()
	rep, err := f.AttestAll(parallel, opts)
	if err != nil {
		t.Fatalf("AttestAll: %v", err)
	}
	return rep
}

func TestHealthyFleet(t *testing.T) {
	f, err := NewFleet(4, factory)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4 {
		t.Fatalf("size %d", f.Size())
	}
	rep := mustAttestAll(t, f, false, nil)
	if len(rep.Healthy) != 4 || len(rep.Compromised) != 0 {
		t.Fatalf("healthy=%v compromised=%v", rep.Healthy, rep.Compromised)
	}
	for _, r := range rep.Results {
		if !r.Healthy() || r.Elapsed <= 0 {
			t.Fatalf("bad result %+v", r)
		}
	}
}

func TestCompromisedMemberIsolated(t *testing.T) {
	f, err := NewFleet(5, factory)
	if err != nil {
		t.Fatal(err)
	}
	const bad = 3
	rep := mustAttestAll(t, f, true, func(id uint64) core.AttestOptions {
		if id != bad {
			return core.AttestOptions{}
		}
		sys, _ := f.System(id)
		return core.AttestOptions{TamperDevice: func(d *prover.Device) {
			d.Fabric.Mem.Frame(sys.DynFrames()[11])[5] ^= 2
		}}
	})
	if len(rep.Compromised) != 1 || rep.Compromised[0] != bad {
		t.Fatalf("compromised = %v, want [%d]", rep.Compromised, bad)
	}
	if len(rep.Healthy) != 4 {
		t.Fatalf("healthy = %v", rep.Healthy)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	f, err := NewFleet(3, factory)
	if err != nil {
		t.Fatal(err)
	}
	seq := mustAttestAll(t, f, false, nil)
	par := mustAttestAll(t, f, true, nil)
	if len(seq.Healthy) != len(par.Healthy) {
		t.Fatalf("sequential %d healthy vs parallel %d", len(seq.Healthy), len(par.Healthy))
	}
}

func TestFleetValidation(t *testing.T) {
	if _, err := NewFleet(0, factory); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewFleet(2, func(id uint64) (*core.System, error) {
		return nil, errBoom
	}); err == nil {
		t.Fatal("factory failure not propagated")
	}
	f, _ := NewFleet(1, factory)
	if _, ok := f.System(99); ok {
		t.Fatal("unknown device returned")
	}
}

func TestSharedPlanSweepHealthy(t *testing.T) {
	f, err := NewFleet(5, factory)
	if err != nil {
		t.Fatal(err)
	}
	nonce := uint64(0xFEED)
	rep := mustSweep(t, f, context.Background(), SweepConfig{
		Concurrency: 4,
		SharePlans:  true,
		Nonce:       &nonce,
	}, nil)
	if len(rep.Healthy) != 5 {
		t.Fatalf("healthy = %v (failed=%v unreachable=%v compromised=%v)",
			rep.Healthy, rep.Failed, rep.Unreachable, rep.Compromised)
	}
	// One device class — geometry, application, build and key mode are
	// identical across the fleet — so the sweep builds exactly one plan.
	if rep.PlansBuilt != 1 {
		t.Fatalf("plans built = %d, want 1", rep.PlansBuilt)
	}
}

func TestColdSweepBuildsNoSharedPlans(t *testing.T) {
	f, err := NewFleet(2, factory)
	if err != nil {
		t.Fatal(err)
	}
	rep := mustSweep(t, f, context.Background(), SweepConfig{Concurrency: 2}, nil)
	if rep.PlansBuilt != 0 {
		t.Fatalf("plans built = %d without SharePlans", rep.PlansBuilt)
	}
	if len(rep.Healthy) != 2 {
		t.Fatalf("healthy = %v", rep.Healthy)
	}
}

func TestSharedPlanDetectsTamper(t *testing.T) {
	// The shared plan must not blunt detection: a tampered member still
	// comes back Compromised while its classmates attest Healthy off the
	// very same plan.
	f, err := NewFleet(4, factory)
	if err != nil {
		t.Fatal(err)
	}
	const bad = 2
	rep := mustSweep(t, f, context.Background(), SweepConfig{
		Concurrency: 4,
		SharePlans:  true,
	}, func(id uint64) core.AttestOptions {
		if id != bad {
			return core.AttestOptions{}
		}
		sys, _ := f.System(id)
		return core.AttestOptions{TamperDevice: func(d *prover.Device) {
			d.Fabric.Mem.Frame(sys.DynFrames()[11])[5] ^= 2
		}}
	})
	if len(rep.Compromised) != 1 || rep.Compromised[0] != bad {
		t.Fatalf("compromised = %v, want [%d]", rep.Compromised, bad)
	}
	if len(rep.Healthy) != 3 {
		t.Fatalf("healthy = %v", rep.Healthy)
	}
	if rep.PlansBuilt != 1 {
		t.Fatalf("plans built = %d, want 1", rep.PlansBuilt)
	}
}

type boomErr struct{}

func (boomErr) Error() string { return "boom" }

var errBoom = boomErr{}

func TestPlanCacheRepeatedSweepBuildsZeroPlans(t *testing.T) {
	// The plan-cache contract of the perf work: a repeated sweep with a
	// pinned nonce pays zero plan builds — the cache returns the previous
	// sweep's plans by (golden digest, geometry, options) key — and the
	// verdicts are unchanged.
	f, err := NewFleet(4, factory)
	if err != nil {
		t.Fatal(err)
	}
	nonce := uint64(0xFEED)
	cache := attestation.NewPlanCache(0)
	cfg := SweepConfig{
		Concurrency: 2,
		SharePlans:  true,
		Nonce:       &nonce,
		PlanCache:   cache,
	}
	first := mustSweep(t, f, context.Background(), cfg, nil)
	if len(first.Healthy) != 4 {
		t.Fatalf("first sweep healthy = %v (failed=%v)", first.Healthy, first.Failed)
	}
	if first.PlansBuilt != 1 || first.PlanCacheHits != 0 {
		t.Fatalf("first sweep built=%d hits=%d, want 1/0", first.PlansBuilt, first.PlanCacheHits)
	}
	second := mustSweep(t, f, context.Background(), cfg, nil)
	if len(second.Healthy) != 4 {
		t.Fatalf("second sweep healthy = %v", second.Healthy)
	}
	if second.PlansBuilt != 0 || second.PlanCacheHits != 1 {
		t.Fatalf("second sweep built=%d hits=%d, want 0/1", second.PlansBuilt, second.PlanCacheHits)
	}
	// A different nonce is a different golden image: the cache must NOT
	// serve the old plan for it.
	other := uint64(0xD1CE)
	cfg.Nonce = &other
	third := mustSweep(t, f, context.Background(), cfg, nil)
	if third.PlansBuilt != 1 || third.PlanCacheHits != 0 {
		t.Fatalf("new-nonce sweep built=%d hits=%d, want 1/0", third.PlansBuilt, third.PlanCacheHits)
	}
}

func TestWindowedSweep(t *testing.T) {
	// The pipelined session composes with the fleet path: a sweep whose
	// per-device runs use Window > 1 attests everyone.
	f, err := NewFleet(3, factory)
	if err != nil {
		t.Fatal(err)
	}
	nonce := uint64(0xFEED)
	rep := mustSweep(t, f, context.Background(), SweepConfig{
		Concurrency: 3,
		SharePlans:  true,
		Nonce:       &nonce,
	}, func(uint64) core.AttestOptions {
		pol := verifier.DefaultRetryPolicy()
		pol.Window = 8
		return core.AttestOptions{Opts: verifier.Options{Retry: pol}}
	})
	if len(rep.Healthy) != 3 {
		t.Fatalf("healthy = %v (failed=%v unreachable=%v compromised=%v)",
			rep.Healthy, rep.Failed, rep.Unreachable, rep.Compromised)
	}
}
