package swarm

import (
	"testing"

	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
)

func factory(id uint64) (*core.System, error) {
	return core.NewSystem(core.Config{
		Geo:        device.SmallLX(),
		App:        netlist.Blinker(8),
		KeyMode:    core.KeyStatPUF,
		DeviceID:   id,
		LabLatency: -1,
		Seed:       int64(id),
	})
}

func TestHealthyFleet(t *testing.T) {
	f, err := NewFleet(4, factory)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4 {
		t.Fatalf("size %d", f.Size())
	}
	rep := f.AttestAll(false, nil)
	if len(rep.Healthy) != 4 || len(rep.Compromised) != 0 {
		t.Fatalf("healthy=%v compromised=%v", rep.Healthy, rep.Compromised)
	}
	for _, r := range rep.Results {
		if !r.Healthy() || r.Elapsed <= 0 {
			t.Fatalf("bad result %+v", r)
		}
	}
}

func TestCompromisedMemberIsolated(t *testing.T) {
	f, err := NewFleet(5, factory)
	if err != nil {
		t.Fatal(err)
	}
	const bad = 3
	rep := f.AttestAll(true, func(id uint64) core.AttestOptions {
		if id != bad {
			return core.AttestOptions{}
		}
		sys, _ := f.System(id)
		return core.AttestOptions{TamperDevice: func(d *prover.Device) {
			d.Fabric.Mem.Frame(sys.DynFrames()[11])[5] ^= 2
		}}
	})
	if len(rep.Compromised) != 1 || rep.Compromised[0] != bad {
		t.Fatalf("compromised = %v, want [%d]", rep.Compromised, bad)
	}
	if len(rep.Healthy) != 4 {
		t.Fatalf("healthy = %v", rep.Healthy)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	f, err := NewFleet(3, factory)
	if err != nil {
		t.Fatal(err)
	}
	seq := f.AttestAll(false, nil)
	par := f.AttestAll(true, nil)
	if len(seq.Healthy) != len(par.Healthy) {
		t.Fatalf("sequential %d healthy vs parallel %d", len(seq.Healthy), len(par.Healthy))
	}
}

func TestFleetValidation(t *testing.T) {
	if _, err := NewFleet(0, factory); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewFleet(2, func(id uint64) (*core.System, error) {
		return nil, errBoom
	}); err == nil {
		t.Fatal("factory failure not propagated")
	}
	f, _ := NewFleet(1, factory)
	if _, ok := f.System(99); ok {
		t.Fatal("unknown device returned")
	}
}

type boomErr struct{}

func (boomErr) Error() string { return "boom" }

var errBoom = boomErr{}
