package swarm

import (
	"context"
	"errors"
	"testing"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
)

// dynPUFFactory provisions TinyLX members in the DynPart-PUF key mode —
// the only provisioning whose key can rotate (paper §5.2.1).
func dynPUFFactory(id uint64) (*core.System, error) {
	return core.NewSystem(core.Config{
		Geo:        device.TinyLX(),
		App:        netlist.Blinker(8),
		KeyMode:    core.KeyDynPUF,
		DeviceID:   id,
		LabLatency: -1,
		Seed:       int64(id),
	})
}

// TestPerDeviceSweepBuildsZeroPlans is the issue's acceptance bar: a
// repeated PerDevice sweep over one device class must build plans only
// on the first pass — every later sweep serves WithNonce patches of the
// cached base — while every device still gets its own nonce.
func TestPerDeviceSweepBuildsZeroPlans(t *testing.T) {
	const size = 4
	f, err := NewFleet(size, tinyFactory)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{
		Concurrency: 2,
		SharePlans:  true,
		Freshness:   attestation.PerDevice,
		PlanCache:   attestation.NewPlanCache(0),
	}
	seen := map[uint64]int{}
	first := mustSweep(t, f, context.Background(), cfg, nil)
	if len(first.Healthy) != size {
		t.Fatalf("first sweep healthy=%v failed=%v", first.Healthy, first.Failed)
	}
	if first.PlansBuilt != 1 || first.PlanCacheHits != 0 {
		t.Fatalf("first sweep built=%d hits=%d, want 1/0", first.PlansBuilt, first.PlanCacheHits)
	}
	if first.PlanPatches != size {
		t.Fatalf("first sweep patches=%d, want %d", first.PlanPatches, size)
	}
	for _, r := range first.Results {
		if !r.PlanPatched {
			t.Fatalf("device %d was not patched under PerDevice", r.DeviceID)
		}
		seen[r.Nonce]++
	}

	second := mustSweep(t, f, context.Background(), cfg, nil)
	if len(second.Healthy) != size {
		t.Fatalf("second sweep healthy=%v failed=%v", second.Healthy, second.Failed)
	}
	if second.PlansBuilt != 0 || second.PlanCacheHits != 1 {
		t.Fatalf("second sweep built=%d hits=%d, want 0/1 — nonce rotation must not cost plan builds",
			second.PlansBuilt, second.PlanCacheHits)
	}
	if second.PlanPatches != size {
		t.Fatalf("second sweep patches=%d, want %d", second.PlanPatches, size)
	}
	for _, r := range second.Results {
		seen[r.Nonce]++
	}
	// 2×size draws of a 64-bit nonce: every one must be distinct (a
	// repeat here means the rotation is not actually rotating).
	if len(seen) != 2*size {
		t.Fatalf("nonces not distinct across sweeps: %d unique of %d", len(seen), 2*size)
	}
}

// TestPerDeviceDetectsTamper: the patched plans must keep their teeth —
// a tampered member is still isolated under PerDevice freshness.
func TestPerDeviceDetectsTamper(t *testing.T) {
	f, err := NewFleet(4, tinyFactory)
	if err != nil {
		t.Fatal(err)
	}
	const bad = 2
	rep := mustSweep(t, f, context.Background(), SweepConfig{
		Concurrency: 4,
		SharePlans:  true,
		Freshness:   attestation.PerDevice,
	}, func(id uint64) core.AttestOptions {
		if id != bad {
			return core.AttestOptions{}
		}
		sys, _ := f.System(id)
		return core.AttestOptions{TamperDevice: func(d *prover.Device) {
			d.Fabric.Mem.Frame(sys.DynFrames()[3])[5] ^= 2
		}}
	})
	if len(rep.Compromised) != 1 || rep.Compromised[0] != bad {
		t.Fatalf("compromised = %v, want [%d]", rep.Compromised, bad)
	}
	if len(rep.Healthy) != 3 {
		t.Fatalf("healthy = %v", rep.Healthy)
	}
}

// TestNoncePinPolicyConflict: a pinned sweep nonce and a per-device
// freshness policy contradict each other; the sweep must refuse with the
// typed error instead of silently picking one.
func TestNoncePinPolicyConflict(t *testing.T) {
	f, err := NewFleet(2, tinyFactory)
	if err != nil {
		t.Fatal(err)
	}
	nonce := uint64(0xFEED)
	for _, pol := range []attestation.FreshnessPolicy{attestation.PerDevice, attestation.RotateKey} {
		_, err := f.Sweep(context.Background(), SweepConfig{Nonce: &nonce, Freshness: pol}, nil)
		var npe *NoncePolicyError
		if !errors.As(err, &npe) {
			t.Fatalf("policy %v with pinned nonce: err = %v, want NoncePolicyError", pol, err)
		}
		if npe.Policy != pol {
			t.Fatalf("error names policy %v, want %v", npe.Policy, pol)
		}
	}
	// The pin is fine under PerSweep.
	if _, err := f.Sweep(context.Background(), SweepConfig{Nonce: &nonce}, nil); err != nil {
		t.Fatalf("pinned nonce under PerSweep rejected: %v", err)
	}
	// Out-of-range policy values are rejected before any work.
	if _, err := f.Sweep(context.Background(), SweepConfig{Freshness: attestation.FreshnessPolicy(99)}, nil); err == nil {
		t.Fatal("invalid freshness policy accepted")
	}
}

// TestRotateKeySweep: the strongest policy re-keys every member before
// attesting. The rotation changes the device class (new PUF circuit in
// the golden image), so each sweep rebuilds the class plan once and then
// serves per-device nonce patches off it; verdicts stay intact.
func TestRotateKeySweep(t *testing.T) {
	const size = 3
	f, err := NewFleet(size, dynPUFFactory)
	if err != nil {
		t.Fatal(err)
	}
	classBefore := mustSystem(t, f, 1).ClassKey()
	cfg := SweepConfig{
		Concurrency: 2,
		SharePlans:  true,
		Freshness:   attestation.RotateKey,
		PlanCache:   attestation.NewPlanCache(0),
	}
	first := mustSweep(t, f, context.Background(), cfg, nil)
	if len(first.Healthy) != size {
		t.Fatalf("first sweep healthy=%v failed=%v compromised=%v", first.Healthy, first.Failed, first.Compromised)
	}
	if first.KeysRotated != size {
		t.Fatalf("keys rotated = %d, want %d", first.KeysRotated, size)
	}
	if first.PlansBuilt != 1 || first.PlanPatches != size {
		t.Fatalf("first sweep built=%d patches=%d, want 1/%d", first.PlansBuilt, first.PlanPatches, size)
	}
	classAfter := mustSystem(t, f, 1).ClassKey()
	if classBefore == classAfter {
		t.Fatal("key rotation did not change the device class")
	}
	// Every sweep rotates again: a fresh key generation is a fresh class,
	// so the old cached plan cannot be (and is not) reused.
	second := mustSweep(t, f, context.Background(), cfg, nil)
	if len(second.Healthy) != size {
		t.Fatalf("second sweep healthy=%v failed=%v", second.Healthy, second.Failed)
	}
	if second.KeysRotated != size || second.PlansBuilt != 1 || second.PlanCacheHits != 0 {
		t.Fatalf("second sweep rotated=%d built=%d hits=%d, want %d/1/0",
			second.KeysRotated, second.PlansBuilt, second.PlanCacheHits, size)
	}
}

// TestRotateKeyDetectsTamper: rotation must not blunt detection.
func TestRotateKeyDetectsTamper(t *testing.T) {
	f, err := NewFleet(3, dynPUFFactory)
	if err != nil {
		t.Fatal(err)
	}
	const bad = 1
	rep := mustSweep(t, f, context.Background(), SweepConfig{
		Concurrency: 3,
		SharePlans:  true,
		Freshness:   attestation.RotateKey,
	}, func(id uint64) core.AttestOptions {
		if id != bad {
			return core.AttestOptions{}
		}
		sys, _ := f.System(id)
		return core.AttestOptions{TamperDevice: func(d *prover.Device) {
			d.Fabric.Mem.Frame(sys.DynFrames()[3])[5] ^= 2
		}}
	})
	if len(rep.Compromised) != 1 || rep.Compromised[0] != bad {
		t.Fatalf("compromised = %v, want [%d]", rep.Compromised, bad)
	}
}

// TestRotateKeyRequiresDynPUF: members whose keys cannot rotate fail the
// sweep validation with the typed error naming the offending device.
func TestRotateKeyRequiresDynPUF(t *testing.T) {
	f, err := NewFleet(2, tinyFactory) // KeyStatPUF members
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Sweep(context.Background(), SweepConfig{Freshness: attestation.RotateKey}, nil)
	var kme *KeyModeError
	if !errors.As(err, &kme) {
		t.Fatalf("err = %v, want KeyModeError", err)
	}
	if kme.Mode != core.KeyStatPUF {
		t.Fatalf("error names mode %d, want %d", kme.Mode, core.KeyStatPUF)
	}
}
