// Package swarm manages attestation of a fleet of SACHa devices — the
// large-population deployment the paper's related-work section motivates
// (swarm attestation of many embedded devices serving one task).
//
// Each device is an independently provisioned core.System with its own
// PUF enrollment; the manager attests them sequentially or concurrently
// and aggregates a fleet health report.
package swarm

import (
	"fmt"
	"sync"
	"time"

	"sacha/internal/core"
	"sacha/internal/verifier"
)

// DeviceResult is the outcome for one fleet member.
type DeviceResult struct {
	DeviceID uint64
	Report   *verifier.Report
	Err      error
	Elapsed  time.Duration
}

// Healthy reports whether the device attested successfully.
func (r DeviceResult) Healthy() bool {
	return r.Err == nil && r.Report != nil && r.Report.Accepted
}

// Fleet is a set of provisioned devices under one verifier operator.
type Fleet struct {
	systems map[uint64]*core.System
	order   []uint64
}

// NewFleet provisions n devices with the factory, which receives the
// device ID and returns a configured system.
func NewFleet(n int, factory func(deviceID uint64) (*core.System, error)) (*Fleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("swarm: fleet size %d", n)
	}
	f := &Fleet{systems: make(map[uint64]*core.System, n)}
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		sys, err := factory(id)
		if err != nil {
			return nil, fmt.Errorf("swarm: provisioning device %d: %w", id, err)
		}
		f.systems[id] = sys
		f.order = append(f.order, id)
	}
	return f, nil
}

// Size returns the fleet size.
func (f *Fleet) Size() int { return len(f.order) }

// System returns one fleet member for direct (e.g. adversarial) access.
func (f *Fleet) System(deviceID uint64) (*core.System, bool) {
	s, ok := f.systems[deviceID]
	return s, ok
}

// Report aggregates a fleet sweep.
type Report struct {
	Results []DeviceResult
	// Healthy and Compromised partition the fleet by verdict.
	Healthy, Compromised []uint64
	// Elapsed is the wall time of the sweep.
	Elapsed time.Duration
}

// AttestAll attests every device. With parallel=true the sweeps run
// concurrently (each device has its own channel and verifier state).
func (f *Fleet) AttestAll(parallel bool, opts func(deviceID uint64) core.AttestOptions) *Report {
	if opts == nil {
		opts = func(uint64) core.AttestOptions { return core.AttestOptions{} }
	}
	start := time.Now()
	results := make([]DeviceResult, len(f.order))
	run := func(i int, id uint64) {
		t0 := time.Now()
		rep, err := f.systems[id].Attest(opts(id))
		results[i] = DeviceResult{DeviceID: id, Report: rep, Err: err, Elapsed: time.Since(t0)}
	}
	if parallel {
		var wg sync.WaitGroup
		for i, id := range f.order {
			wg.Add(1)
			go func(i int, id uint64) {
				defer wg.Done()
				run(i, id)
			}(i, id)
		}
		wg.Wait()
	} else {
		for i, id := range f.order {
			run(i, id)
		}
	}
	out := &Report{Results: results, Elapsed: time.Since(start)}
	for _, r := range results {
		if r.Healthy() {
			out.Healthy = append(out.Healthy, r.DeviceID)
		} else {
			out.Compromised = append(out.Compromised, r.DeviceID)
		}
	}
	return out
}
