// Package swarm manages attestation of a fleet of SACHa devices — the
// large-population deployment the paper's related-work section motivates
// (swarm attestation of many embedded devices serving one task).
//
// Since the fleet stack was layered (see internal/fleet and DESIGN.md
// §12), swarm is a thin compatibility facade: membership lives in
// fleet/registry, the sweep engine in fleet/dispatch, and Fleet.Sweep
// collapses to a one-shard dispatch — bit-identical to the historic
// single-engine sweep (the dispatcher's differential test proves the
// sharded form equal to this facade). Existing callers — the verifier
// CLI, the campaign harness, the e2e rigs — keep compiling unchanged
// against the aliases below; new fleet-scale callers (sacha-fleetd)
// talk to the layers directly.
package swarm

import (
	"context"

	"sacha/internal/core"
	"sacha/internal/fleet"
	"sacha/internal/fleet/dispatch"
	"sacha/internal/fleet/registry"
)

// The sweep vocabulary is shared with the layered fleet stack; the
// aliases keep every historic swarm.X spelling valid.
type (
	// DeviceResult is the outcome for one fleet member.
	DeviceResult = fleet.DeviceResult
	// ClassHealth partitions one device class's sweep outcomes.
	ClassHealth = fleet.ClassHealth
	// Report aggregates a fleet sweep.
	Report = fleet.Report
	// SweepConfig bounds a fleet sweep.
	SweepConfig = fleet.SweepConfig
	// NoncePolicyError reports a pinned nonce contradicting a per-device
	// freshness policy.
	NoncePolicyError = fleet.NoncePolicyError
	// KeyModeError reports a RotateKey sweep over a non-rotatable member.
	KeyModeError = fleet.KeyModeError
)

// DefaultConcurrency is the worker-pool size used when SweepConfig does
// not specify one.
const DefaultConcurrency = fleet.DefaultConcurrency

// Fleet is a set of provisioned devices under one verifier operator:
// a static registry swept through a single-shard dispatcher.
type Fleet struct {
	reg  *registry.Static
	disp *dispatch.Dispatcher
}

// NewFleet provisions n devices with the factory, which receives the
// device ID and returns a configured system.
func NewFleet(n int, factory func(deviceID uint64) (*core.System, error)) (*Fleet, error) {
	reg, err := registry.New(n, factory)
	if err != nil {
		return nil, err
	}
	return &Fleet{reg: reg, disp: dispatch.New(dispatch.Config{Shards: 1})}, nil
}

// Size returns the fleet size.
func (f *Fleet) Size() int { return f.reg.Size() }

// System returns one fleet member for direct (e.g. adversarial) access.
func (f *Fleet) System(deviceID uint64) (*core.System, bool) {
	return f.reg.System(deviceID)
}

// Registry exposes the fleet's membership layer — the handle new-style
// callers (scheduler, fleetd, a multi-shard dispatcher) sweep through
// directly.
func (f *Fleet) Registry() *registry.Static { return f.reg }

// Sweep attests every device through a bounded worker pool. The context
// cancels the whole sweep: devices not yet started when ctx is done are
// reported Unreachable with ctx's error. A contradictory configuration
// (pinned nonce under a per-device freshness policy, RotateKey over a
// non-rotatable key mode) is rejected with a typed error before any
// device is touched.
func (f *Fleet) Sweep(ctx context.Context, cfg SweepConfig, opts func(deviceID uint64) core.AttestOptions) (*Report, error) {
	return f.disp.Sweep(ctx, f.reg, cfg, opts)
}

// AttestAll attests every device. With parallel=true the sweep uses the
// default bounded worker pool; sequential otherwise. It is the
// context-free convenience form of Sweep.
func (f *Fleet) AttestAll(parallel bool, opts func(deviceID uint64) core.AttestOptions) (*Report, error) {
	conc := 1
	if parallel {
		conc = DefaultConcurrency
	}
	return f.Sweep(context.Background(), SweepConfig{Concurrency: conc}, opts)
}
