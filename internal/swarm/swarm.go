// Package swarm manages attestation of a fleet of SACHa devices — the
// large-population deployment the paper's related-work section motivates
// (swarm attestation of many embedded devices serving one task).
//
// Each device is an independently provisioned core.System with its own
// PUF enrollment; the manager sweeps them through a bounded worker pool
// with per-device deadlines and aggregates a fleet health report that
// keeps transport failures (Unreachable) strictly apart from rejected
// attestations (Compromised) — mistaking a flaky link for a compromised
// device would trigger pointless re-provisioning, and the converse would
// hide real attacks behind "network trouble".
package swarm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/obs"
	"sacha/internal/verifier"
)

// Fleet-sweep metric families: live progress (in-flight and completed
// device attestations) and the per-class health partition of the most
// recent sweep. The class gauges are overwritten sweep by sweep — they
// answer "how healthy is each device class right now", while the
// counters accumulate across sweeps.
var (
	mSweepInflight = obs.Default().Gauge("sacha_sweep_inflight",
		"Device attestations currently running in fleet sweeps.")
	mSweepCompleted = obs.Default().CounterVec("sacha_sweep_completed_total",
		"Device attestations completed in fleet sweeps, by verdict.", "verdict")
	mSweeps = obs.Default().Counter("sacha_sweeps_total",
		"Fleet sweeps run.")
	mClassState = obs.Default().GaugeVec("sacha_sweep_class_state",
		"Per-class health partition of the most recent fleet sweep.", "class", "state")
)

// DeviceResult is the outcome for one fleet member.
type DeviceResult struct {
	DeviceID uint64
	// Class is the device's core.System.ClassKey — the plan-sharing
	// group the per-class health tallies aggregate over.
	Class   string
	Report  *verifier.Report
	Err     error
	Elapsed time.Duration
}

// Healthy reports whether the device attested successfully.
func (r DeviceResult) Healthy() bool {
	return r.Err == nil && r.Report != nil && r.Report.Accepted
}

// Unreachable reports whether the sweep could not complete the protocol
// with the device for transport reasons: retry budget exhausted, link
// reset, or the per-device deadline expired. An unreachable device has
// no verdict — it is neither healthy nor compromised.
func (r DeviceResult) Unreachable() bool {
	return r.Err != nil && (verifier.IsTransport(r.Err) ||
		errors.Is(r.Err, context.DeadlineExceeded) || errors.Is(r.Err, context.Canceled))
}

// Compromised reports whether the protocol completed and the verifier
// rejected the device (MAC or bitstream mismatch).
func (r DeviceResult) Compromised() bool {
	return r.Err == nil && r.Report != nil && !r.Report.Accepted
}

// Verdict names the health partition this result falls into: one of
// obs.VerdictHealthy, VerdictCompromised, VerdictUnreachable or
// VerdictFailed.
func (r DeviceResult) Verdict() string {
	switch {
	case r.Healthy():
		return obs.VerdictHealthy
	case r.Compromised():
		return obs.VerdictCompromised
	case r.Unreachable():
		return obs.VerdictUnreachable
	default:
		return obs.VerdictFailed
	}
}

// Fleet is a set of provisioned devices under one verifier operator.
type Fleet struct {
	systems map[uint64]*core.System
	order   []uint64
}

// NewFleet provisions n devices with the factory, which receives the
// device ID and returns a configured system.
func NewFleet(n int, factory func(deviceID uint64) (*core.System, error)) (*Fleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("swarm: fleet size %d", n)
	}
	f := &Fleet{systems: make(map[uint64]*core.System, n)}
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		sys, err := factory(id)
		if err != nil {
			return nil, fmt.Errorf("swarm: provisioning device %d: %w", id, err)
		}
		f.systems[id] = sys
		f.order = append(f.order, id)
	}
	return f, nil
}

// Size returns the fleet size.
func (f *Fleet) Size() int { return len(f.order) }

// System returns one fleet member for direct (e.g. adversarial) access.
func (f *Fleet) System(deviceID uint64) (*core.System, bool) {
	s, ok := f.systems[deviceID]
	return s, ok
}

// ClassHealth partitions one device class's sweep outcomes.
type ClassHealth struct {
	Healthy, Compromised, Unreachable, Failed int
}

// Report aggregates a fleet sweep.
type Report struct {
	Results []DeviceResult
	// Healthy, Compromised, Unreachable and Failed partition the fleet:
	// accepted verdicts, rejected verdicts, transport failures, and
	// non-transport errors (e.g. a local golden-image build failure).
	Healthy, Compromised, Unreachable, Failed []uint64
	// PerClass partitions the same outcomes by device class
	// (core.System.ClassKey) — the multi-geometry fleet view: a class
	// whose members all land Unreachable points at a transport or
	// plan problem, one with Compromised members at an attack.
	PerClass map[string]ClassHealth
	// Retries and TransportFaults aggregate the per-run transport
	// counters across the fleet, so sweep-level fault pressure is
	// visible without scraping individual reports.
	Retries, TransportFaults int
	// Elapsed is the wall time of the sweep.
	Elapsed time.Duration
	// PlansBuilt counts the attestation plans actually constructed for the
	// sweep: one per device class under SharePlans, fewer (down to zero)
	// when a PlanCache serves classes it has seen before.
	PlansBuilt int
	// PlanCacheHits counts device classes whose plan came out of the
	// sweep's PlanCache instead of being built.
	PlanCacheHits int
}

// SweepConfig bounds a fleet sweep.
type SweepConfig struct {
	// Concurrency is the worker-pool size; at most Concurrency devices
	// are attested at any moment. Values < 1 default to min(8, fleet).
	Concurrency int
	// PerDeviceTimeout bounds each device's attestation; expired devices
	// are reported Unreachable. Zero means no per-device deadline.
	PerDeviceTimeout time.Duration
	// SharePlans, when set, builds one attestation.Plan per device class
	// (same geometry, application, build, key mode, ROM — see
	// core.System.ClassKey) before the worker pool starts, and shares it
	// read-only across all concurrent per-device Runs. The whole sweep
	// then uses one nonce and one set of plan-shaping options (PlanOpts);
	// per-device AttestOptions contribute only their per-run knobs
	// (Retry, Trace, adversary and channel hooks). This converts the
	// golden-image work from O(fleet × fabric) to O(classes × fabric).
	SharePlans bool
	// Nonce fixes the sweep nonce under SharePlans; nil draws a fresh
	// one. Ignored when SharePlans is unset (each device then draws its
	// own nonce as before).
	Nonce *uint64
	// PlanOpts are the fleet-wide plan-shaping options under SharePlans
	// (Offset, Permutation, AppSteps, SignatureMode, ConfigBatch).
	PlanOpts verifier.Options
	// PlanCache, if non-nil under SharePlans, caches built plans across
	// sweeps keyed by (golden-image digest, geometry, options hash). A
	// repeated sweep with a pinned Nonce then builds zero plans — the
	// cache returns the previous sweep's plans, and Report.PlansBuilt /
	// PlanCacheHits make the split observable.
	PlanCache *attestation.PlanCache
	// Tracker, if non-nil, follows the sweep live: per-device
	// pending/running/done states with verdicts, served by the verifier
	// CLI as the /debug/sweep snapshot.
	Tracker *obs.SweepTracker
}

// DefaultConcurrency is the worker-pool size used when SweepConfig does
// not specify one.
const DefaultConcurrency = 8

// planEntry is the outcome of one per-class plan build.
type planEntry struct {
	plan *attestation.Plan
	err  error
}

// buildPlans constructs (or fetches from the cache) one shared plan per
// device class for the sweep nonce, reporting how many were really built
// versus served from the cache. A class whose plan fails to build carries
// the error to every member (reported Failed, not Unreachable — nothing
// was transported).
func (f *Fleet) buildPlans(cfg SweepConfig) (plans map[string]planEntry, built, cacheHits int) {
	nonce := rand.Uint64()
	if cfg.Nonce != nil {
		nonce = *cfg.Nonce
	}
	plans = make(map[string]planEntry)
	for _, id := range f.order {
		sys := f.systems[id]
		key := sys.ClassKey()
		if _, ok := plans[key]; ok {
			continue
		}
		if cfg.PlanCache != nil {
			spec, err := sys.PlanSpec(nonce, cfg.PlanOpts)
			if err != nil {
				plans[key] = planEntry{err: err}
				continue
			}
			p, didBuild, err := cfg.PlanCache.GetOrBuild(spec)
			plans[key] = planEntry{plan: p, err: err}
			if err == nil {
				if didBuild {
					built++
				} else {
					cacheHits++
				}
			}
			continue
		}
		p, err := sys.Plan(nonce, cfg.PlanOpts)
		plans[key] = planEntry{plan: p, err: err}
		built++
	}
	return plans, built, cacheHits
}

// Sweep attests every device through a bounded worker pool. The context
// cancels the whole sweep: devices not yet started when ctx is done are
// reported Unreachable with ctx's error.
func (f *Fleet) Sweep(ctx context.Context, cfg SweepConfig, opts func(deviceID uint64) core.AttestOptions) *Report {
	if opts == nil {
		opts = func(uint64) core.AttestOptions { return core.AttestOptions{} }
	}
	workers := cfg.Concurrency
	if workers < 1 {
		workers = DefaultConcurrency
	}
	if workers > len(f.order) {
		workers = len(f.order)
	}
	start := time.Now()
	mSweeps.Inc()
	var plans map[string]planEntry
	var plansBuilt, planCacheHits int
	if cfg.SharePlans {
		plans, plansBuilt, planCacheHits = f.buildPlans(cfg)
	}
	if cfg.Tracker != nil {
		targets := make([]obs.SweepTarget, 0, len(f.order))
		for _, id := range f.order {
			targets = append(targets, obs.SweepTarget{
				Name:  fmt.Sprintf("device-%d", id),
				Class: f.systems[id].ClassKey(),
			})
		}
		cfg.Tracker.Begin(targets)
	}
	obs.Logger().Info("sweep start", "devices", len(f.order), "workers", workers,
		"share_plans", cfg.SharePlans, "plans_built", plansBuilt, "plan_cache_hits", planCacheHits)
	results := make([]DeviceResult, len(f.order))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				id := f.order[i]
				results[i] = f.attestOne(ctx, cfg, plans, id, opts(id))
			}
		}()
	}
	for i := range f.order {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	out := &Report{
		Results:       results,
		Elapsed:       time.Since(start),
		PlansBuilt:    plansBuilt,
		PlanCacheHits: planCacheHits,
		PerClass:      make(map[string]ClassHealth, len(plans)),
	}
	for _, r := range results {
		ch := out.PerClass[r.Class]
		switch {
		case r.Healthy():
			out.Healthy = append(out.Healthy, r.DeviceID)
			ch.Healthy++
		case r.Compromised():
			out.Compromised = append(out.Compromised, r.DeviceID)
			ch.Compromised++
		case r.Unreachable():
			out.Unreachable = append(out.Unreachable, r.DeviceID)
			ch.Unreachable++
		default:
			out.Failed = append(out.Failed, r.DeviceID)
			ch.Failed++
		}
		out.PerClass[r.Class] = ch
		if r.Report != nil {
			out.Retries += r.Report.Retries
			out.TransportFaults += r.Report.TransportFaults
		}
	}
	for class, ch := range out.PerClass {
		mClassState.With(class, obs.VerdictHealthy).Set(int64(ch.Healthy))
		mClassState.With(class, obs.VerdictCompromised).Set(int64(ch.Compromised))
		mClassState.With(class, obs.VerdictUnreachable).Set(int64(ch.Unreachable))
		mClassState.With(class, obs.VerdictFailed).Set(int64(ch.Failed))
	}
	obs.Logger().Info("sweep done", "elapsed", out.Elapsed,
		"healthy", len(out.Healthy), "compromised", len(out.Compromised),
		"unreachable", len(out.Unreachable), "failed", len(out.Failed),
		"retries", out.Retries, "transport_faults", out.TransportFaults)
	return out
}

// attestOne runs a single device attestation under the sweep's deadline
// discipline, through the class's shared plan when the sweep built one.
func (f *Fleet) attestOne(ctx context.Context, cfg SweepConfig, plans map[string]planEntry, id uint64, o core.AttestOptions) (res DeviceResult) {
	t0 := time.Now()
	sys := f.systems[id]
	class := sys.ClassKey()
	name := fmt.Sprintf("device-%d", id)
	if cfg.Tracker != nil {
		cfg.Tracker.Start(name)
	}
	mSweepInflight.Inc()
	defer func() {
		res.Class = class
		mSweepInflight.Dec()
		mSweepCompleted.With(res.Verdict()).Inc()
		if cfg.Tracker != nil {
			out := obs.SweepOutcome{Verdict: res.Verdict(), Elapsed: res.Elapsed}
			if res.Report != nil {
				out.Retries = res.Report.Retries
				out.TransportFaults = res.Report.TransportFaults
			}
			if res.Err != nil {
				out.Err = res.Err.Error()
			}
			cfg.Tracker.Done(name, out)
		}
		obs.Logger().Debug("device attested", "device", id, "class", class,
			"verdict", res.Verdict(), "elapsed", res.Elapsed)
	}()
	if err := ctx.Err(); err != nil {
		return DeviceResult{DeviceID: id, Err: err}
	}
	attest := sys.Attest
	if plans != nil {
		entry := plans[class]
		if entry.err != nil {
			return DeviceResult{DeviceID: id, Err: fmt.Errorf("swarm: plan for device %d: %w", id, entry.err), Elapsed: time.Since(t0)}
		}
		attest = func(o core.AttestOptions) (*verifier.Report, error) {
			return sys.AttestWithPlan(entry.plan, o)
		}
	}
	dctx := ctx
	if cfg.PerDeviceTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, cfg.PerDeviceTimeout)
		defer cancel()
	}
	type outcome struct {
		rep *verifier.Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := attest(o)
		done <- outcome{rep, err}
	}()
	select {
	case oc := <-done:
		return DeviceResult{DeviceID: id, Report: oc.rep, Err: oc.err, Elapsed: time.Since(t0)}
	case <-dctx.Done():
		// The attestation goroutine finishes on its own (the simulated
		// protocol always terminates; a TCP one hits its own timeouts)
		// and its result is discarded — the deadline verdict stands.
		return DeviceResult{DeviceID: id, Err: fmt.Errorf("swarm: device %d: %w", id, dctx.Err()), Elapsed: time.Since(t0)}
	}
}

// AttestAll attests every device. With parallel=true the sweep uses the
// default bounded worker pool; sequential otherwise. It is the
// context-free convenience form of Sweep.
func (f *Fleet) AttestAll(parallel bool, opts func(deviceID uint64) core.AttestOptions) *Report {
	conc := 1
	if parallel {
		conc = DefaultConcurrency
	}
	return f.Sweep(context.Background(), SweepConfig{Concurrency: conc}, opts)
}
