// Package swarm manages attestation of a fleet of SACHa devices — the
// large-population deployment the paper's related-work section motivates
// (swarm attestation of many embedded devices serving one task).
//
// Each device is an independently provisioned core.System with its own
// PUF enrollment; the manager sweeps them through a bounded worker pool
// with per-device deadlines and aggregates a fleet health report that
// keeps transport failures (Unreachable) strictly apart from rejected
// attestations (Compromised) — mistaking a flaky link for a compromised
// device would trigger pointless re-provisioning, and the converse would
// hide real attacks behind "network trouble".
package swarm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/obs"
	"sacha/internal/verifier"
)

// Fleet-sweep metric families: live progress (in-flight and completed
// device attestations) and the per-class health partition of the most
// recent sweep. The class gauges are overwritten sweep by sweep — they
// answer "how healthy is each device class right now", while the
// counters accumulate across sweeps.
var (
	mSweepInflight = obs.Default().Gauge("sacha_sweep_inflight",
		"Device attestations currently running in fleet sweeps.")
	mSweepCompleted = obs.Default().CounterVec("sacha_sweep_completed_total",
		"Device attestations completed in fleet sweeps, by verdict.", "verdict")
	mSweeps = obs.Default().Counter("sacha_sweeps_total",
		"Fleet sweeps run.")
	mClassState = obs.Default().GaugeVec("sacha_sweep_class_state",
		"Per-class health partition of the most recent fleet sweep.", "class", "state")
	mKeysRotated = obs.Default().Counter("sacha_sweep_keys_rotated_total",
		"Per-device PUF key rotations performed by RotateKey-policy sweeps.")
)

// NoncePolicyError reports a SweepConfig whose pinned Nonce contradicts
// its freshness policy: a pinned nonce fixes one nonce for the whole
// sweep, while PerDevice and RotateKey exist to draw fresh per-device
// nonces. The two requests are silently resolvable either way, so the
// sweep refuses to guess.
type NoncePolicyError struct {
	Policy attestation.FreshnessPolicy
}

func (e *NoncePolicyError) Error() string {
	return fmt.Sprintf("swarm: SweepConfig pins a nonce but selects the %s freshness policy — a pinned nonce implies per-sweep freshness; drop the pin or the policy", e.Policy)
}

// KeyModeError reports a RotateKey-policy sweep over a fleet member
// whose key provisioning cannot rotate (only the DynPart-PUF mode ships
// replaceable key circuits).
type KeyModeError struct {
	DeviceID uint64
	Mode     core.KeyMode
}

func (e *KeyModeError) Error() string {
	return fmt.Sprintf("swarm: freshness policy rotate-key requires the DynPart-PUF key mode on every member, but device %d uses key mode %d", e.DeviceID, e.Mode)
}

// DeviceResult is the outcome for one fleet member.
type DeviceResult struct {
	DeviceID uint64
	// Class is the device's core.System.ClassKey — the plan-sharing
	// group the per-class health tallies aggregate over.
	Class   string
	Report  *verifier.Report
	Err     error
	Elapsed time.Duration
	// PlanPatched reports that this device was attested through a
	// WithNonce patch of its class's shared plan (PerDevice or RotateKey
	// freshness under SharePlans); Nonce is then the per-device nonce
	// the patch encoded.
	PlanPatched bool
	Nonce       uint64
}

// Healthy reports whether the device attested successfully.
func (r DeviceResult) Healthy() bool {
	return r.Err == nil && r.Report != nil && r.Report.Accepted
}

// Unreachable reports whether the sweep could not complete the protocol
// with the device for transport reasons: retry budget exhausted, link
// reset, or the per-device deadline expired. An unreachable device has
// no verdict — it is neither healthy nor compromised.
func (r DeviceResult) Unreachable() bool {
	return r.Err != nil && (verifier.IsTransport(r.Err) ||
		errors.Is(r.Err, context.DeadlineExceeded) || errors.Is(r.Err, context.Canceled))
}

// Compromised reports whether the protocol completed and the verifier
// rejected the device (MAC or bitstream mismatch).
func (r DeviceResult) Compromised() bool {
	return r.Err == nil && r.Report != nil && !r.Report.Accepted
}

// Verdict names the health partition this result falls into: one of
// obs.VerdictHealthy, VerdictCompromised, VerdictUnreachable or
// VerdictFailed.
func (r DeviceResult) Verdict() string {
	switch {
	case r.Healthy():
		return obs.VerdictHealthy
	case r.Compromised():
		return obs.VerdictCompromised
	case r.Unreachable():
		return obs.VerdictUnreachable
	default:
		return obs.VerdictFailed
	}
}

// Fleet is a set of provisioned devices under one verifier operator.
type Fleet struct {
	systems map[uint64]*core.System
	order   []uint64
}

// NewFleet provisions n devices with the factory, which receives the
// device ID and returns a configured system.
func NewFleet(n int, factory func(deviceID uint64) (*core.System, error)) (*Fleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("swarm: fleet size %d", n)
	}
	f := &Fleet{systems: make(map[uint64]*core.System, n)}
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		sys, err := factory(id)
		if err != nil {
			return nil, fmt.Errorf("swarm: provisioning device %d: %w", id, err)
		}
		f.systems[id] = sys
		f.order = append(f.order, id)
	}
	return f, nil
}

// Size returns the fleet size.
func (f *Fleet) Size() int { return len(f.order) }

// System returns one fleet member for direct (e.g. adversarial) access.
func (f *Fleet) System(deviceID uint64) (*core.System, bool) {
	s, ok := f.systems[deviceID]
	return s, ok
}

// ClassHealth partitions one device class's sweep outcomes.
type ClassHealth struct {
	Healthy, Compromised, Unreachable, Failed int
}

// Report aggregates a fleet sweep.
type Report struct {
	Results []DeviceResult
	// Healthy, Compromised, Unreachable and Failed partition the fleet:
	// accepted verdicts, rejected verdicts, transport failures, and
	// non-transport errors (e.g. a local golden-image build failure).
	Healthy, Compromised, Unreachable, Failed []uint64
	// PerClass partitions the same outcomes by device class
	// (core.System.ClassKey) — the multi-geometry fleet view: a class
	// whose members all land Unreachable points at a transport or
	// plan problem, one with Compromised members at an attack.
	PerClass map[string]ClassHealth
	// Retries and TransportFaults aggregate the per-run transport
	// counters across the fleet, so sweep-level fault pressure is
	// visible without scraping individual reports.
	Retries, TransportFaults int
	// Elapsed is the wall time of the sweep.
	Elapsed time.Duration
	// PlansBuilt counts the attestation plans actually constructed for the
	// sweep: one per device class under SharePlans, fewer (down to zero)
	// when a PlanCache serves classes it has seen before.
	PlansBuilt int
	// PlanCacheHits counts device classes whose plan came out of the
	// sweep's PlanCache instead of being built.
	PlanCacheHits int
	// PlanPatches counts devices attested through a WithNonce patch of
	// their class's shared plan — the per-device freshness rotations that
	// did NOT cost a plan rebuild.
	PlanPatches int
	// KeysRotated counts the per-device PUF key rotations a RotateKey
	// sweep performed before attesting.
	KeysRotated int
}

// SweepConfig bounds a fleet sweep.
type SweepConfig struct {
	// Concurrency is the worker-pool size; at most Concurrency devices
	// are attested at any moment. Values < 1 default to min(8, fleet).
	Concurrency int
	// PerDeviceTimeout bounds each device's attestation; expired devices
	// are reported Unreachable. Zero means no per-device deadline.
	PerDeviceTimeout time.Duration
	// SharePlans, when set, builds one attestation.Plan per device class
	// (same geometry, application, build, key mode, ROM — see
	// core.System.ClassKey) before the worker pool starts, and shares it
	// read-only across all concurrent per-device Runs. The whole sweep
	// then uses one nonce and one set of plan-shaping options (PlanOpts);
	// per-device AttestOptions contribute only their per-run knobs
	// (Retry, Trace, adversary and channel hooks). This converts the
	// golden-image work from O(fleet × fabric) to O(classes × fabric).
	SharePlans bool
	// Nonce fixes the sweep nonce under SharePlans; nil draws a fresh
	// one. Ignored when SharePlans is unset (each device then draws its
	// own nonce as before). A pinned Nonce is only meaningful under the
	// PerSweep freshness policy; combining it with PerDevice or
	// RotateKey is a NoncePolicyError.
	Nonce *uint64
	// Freshness selects the sweep's freshness unit: PerSweep (the zero
	// value and status quo — one nonce shared by the whole sweep),
	// PerDevice (a fresh nonce per device, served as WithNonce patches
	// of each class's shared plan so the plan cache keeps hitting), or
	// RotateKey (PerDevice plus a PUF re-keying of every device before
	// the sweep, which rebuilds each class's plan once). RotateKey
	// requires every member to use core.KeyDynPUF.
	Freshness attestation.FreshnessPolicy
	// PlanOpts are the fleet-wide plan-shaping options under SharePlans
	// (Offset, Permutation, AppSteps, SignatureMode, ConfigBatch).
	PlanOpts verifier.Options
	// PlanCache, if non-nil under SharePlans, caches built plans across
	// sweeps keyed by (golden-image digest, geometry, options hash). A
	// repeated sweep with a pinned Nonce then builds zero plans — the
	// cache returns the previous sweep's plans, and Report.PlansBuilt /
	// PlanCacheHits make the split observable.
	PlanCache *attestation.PlanCache
	// Tracker, if non-nil, follows the sweep live: per-device
	// pending/running/done states with verdicts, served by the verifier
	// CLI as the /debug/sweep snapshot.
	Tracker *obs.SweepTracker
	// Sessions, if non-nil, is Add(1)-ed for every attestation session
	// the sweep actually launches and Done-ed when that session's
	// goroutine finishes — including sessions a per-device deadline or a
	// sweep cancellation abandoned, which otherwise keep running (and
	// mutating their device) after Sweep returns. Campaign soaks and
	// leak tests Wait on it to quarantine consecutive events from each
	// other's stragglers.
	Sessions *sync.WaitGroup
}

// DefaultConcurrency is the worker-pool size used when SweepConfig does
// not specify one.
const DefaultConcurrency = 8

// planEntry is the outcome of one per-class plan build. patch marks the
// plan as a nonce-patchable base: each device derives its own nonce via
// Plan.WithNonce instead of running the plan as built.
type planEntry struct {
	plan  *attestation.Plan
	patch bool
	err   error
}

// buildPlans constructs (or fetches from the cache) one shared plan per
// device class, reporting how many were really built versus served from
// the cache. Under PerSweep the plan bakes in the sweep nonce as before;
// under PerDevice/RotateKey it is a nonce-patchable base (built from
// PatchableSpec, cache-keyed nonce-free) that attestOne re-nonces per
// device. A class whose plan fails to build carries the error to every
// member (reported Failed, not Unreachable — nothing was transported).
func (f *Fleet) buildPlans(cfg SweepConfig) (plans map[string]planEntry, built, cacheHits int) {
	patchable := cfg.Freshness != attestation.PerSweep
	nonce := rand.Uint64()
	if cfg.Nonce != nil {
		nonce = *cfg.Nonce
	}
	plans = make(map[string]planEntry)
	for _, id := range f.order {
		sys := f.systems[id]
		key := sys.ClassKey()
		if _, ok := plans[key]; ok {
			continue
		}
		var spec attestation.Spec
		var err error
		if patchable {
			spec, err = sys.PatchableSpec(cfg.PlanOpts)
		} else {
			spec, err = sys.PlanSpec(nonce, cfg.PlanOpts)
		}
		if err != nil {
			plans[key] = planEntry{err: err}
			continue
		}
		if cfg.PlanCache != nil {
			p, didBuild, err := cfg.PlanCache.GetOrBuild(spec)
			plans[key] = planEntry{plan: p, patch: patchable, err: err}
			if err == nil {
				if didBuild {
					built++
				} else {
					cacheHits++
				}
			}
			continue
		}
		p, err := attestation.NewPlan(spec)
		plans[key] = planEntry{plan: p, patch: patchable, err: err}
		built++
	}
	return plans, built, cacheHits
}

// validate rejects contradictory sweep configurations before any
// network or fabric work starts.
func (f *Fleet) validate(cfg SweepConfig) error {
	if !cfg.Freshness.Valid() {
		return fmt.Errorf("swarm: unknown freshness policy %d", int(cfg.Freshness))
	}
	if cfg.Nonce != nil && cfg.Freshness != attestation.PerSweep {
		return &NoncePolicyError{Policy: cfg.Freshness}
	}
	if cfg.Freshness == attestation.RotateKey {
		for _, id := range f.order {
			if mode := f.systems[id].KeyMode(); mode != core.KeyDynPUF {
				return &KeyModeError{DeviceID: id, Mode: mode}
			}
		}
	}
	return nil
}

// Sweep attests every device through a bounded worker pool. The context
// cancels the whole sweep: devices not yet started when ctx is done are
// reported Unreachable with ctx's error. A contradictory configuration
// (pinned nonce under a per-device freshness policy, RotateKey over a
// non-rotatable key mode) is rejected with a typed error before any
// device is touched.
func (f *Fleet) Sweep(ctx context.Context, cfg SweepConfig, opts func(deviceID uint64) core.AttestOptions) (*Report, error) {
	if err := f.validate(cfg); err != nil {
		return nil, err
	}
	if opts == nil {
		opts = func(uint64) core.AttestOptions { return core.AttestOptions{} }
	}
	workers := cfg.Concurrency
	if workers < 1 {
		workers = DefaultConcurrency
	}
	if workers > len(f.order) {
		workers = len(f.order)
	}
	start := time.Now()
	mSweeps.Inc()
	keysRotated := 0
	if cfg.Freshness == attestation.RotateKey {
		// Rotate every key before plan building: the shipped PUF circuit
		// changes each class's golden image, so the per-class plans below
		// are rebuilt for the new key generation.
		for _, id := range f.order {
			if err := f.systems[id].RotateKey(); err != nil {
				return nil, fmt.Errorf("swarm: rotating key of device %d: %w", id, err)
			}
			keysRotated++
		}
		mKeysRotated.Add(uint64(keysRotated))
	}
	var plans map[string]planEntry
	var plansBuilt, planCacheHits int
	if cfg.SharePlans {
		plans, plansBuilt, planCacheHits = f.buildPlans(cfg)
	}
	if cfg.Tracker != nil {
		targets := make([]obs.SweepTarget, 0, len(f.order))
		for _, id := range f.order {
			targets = append(targets, obs.SweepTarget{
				Name:  fmt.Sprintf("device-%d", id),
				Class: f.systems[id].ClassKey(),
			})
		}
		cfg.Tracker.Begin(targets)
	}
	obs.Logger().Info("sweep start", "devices", len(f.order), "workers", workers,
		"share_plans", cfg.SharePlans, "freshness", cfg.Freshness.String(),
		"plans_built", plansBuilt, "plan_cache_hits", planCacheHits, "keys_rotated", keysRotated)
	results := make([]DeviceResult, len(f.order))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				id := f.order[i]
				results[i] = f.attestOne(ctx, cfg, plans, id, opts(id))
			}
		}()
	}
	for i := range f.order {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	out := &Report{
		Results:       results,
		Elapsed:       time.Since(start),
		PlansBuilt:    plansBuilt,
		PlanCacheHits: planCacheHits,
		KeysRotated:   keysRotated,
		PerClass:      make(map[string]ClassHealth, len(plans)),
	}
	for _, r := range results {
		if r.PlanPatched {
			out.PlanPatches++
		}
		ch := out.PerClass[r.Class]
		switch {
		case r.Healthy():
			out.Healthy = append(out.Healthy, r.DeviceID)
			ch.Healthy++
		case r.Compromised():
			out.Compromised = append(out.Compromised, r.DeviceID)
			ch.Compromised++
		case r.Unreachable():
			out.Unreachable = append(out.Unreachable, r.DeviceID)
			ch.Unreachable++
		default:
			out.Failed = append(out.Failed, r.DeviceID)
			ch.Failed++
		}
		out.PerClass[r.Class] = ch
		if r.Report != nil {
			out.Retries += r.Report.Retries
			out.TransportFaults += r.Report.TransportFaults
		}
	}
	for class, ch := range out.PerClass {
		mClassState.With(class, obs.VerdictHealthy).Set(int64(ch.Healthy))
		mClassState.With(class, obs.VerdictCompromised).Set(int64(ch.Compromised))
		mClassState.With(class, obs.VerdictUnreachable).Set(int64(ch.Unreachable))
		mClassState.With(class, obs.VerdictFailed).Set(int64(ch.Failed))
	}
	obs.Logger().Info("sweep done", "elapsed", out.Elapsed,
		"healthy", len(out.Healthy), "compromised", len(out.Compromised),
		"unreachable", len(out.Unreachable), "failed", len(out.Failed),
		"retries", out.Retries, "transport_faults", out.TransportFaults,
		"plan_patches", out.PlanPatches, "keys_rotated", out.KeysRotated)
	return out, nil
}

// attestOne runs a single device attestation under the sweep's deadline
// discipline, through the class's shared plan when the sweep built one.
func (f *Fleet) attestOne(ctx context.Context, cfg SweepConfig, plans map[string]planEntry, id uint64, o core.AttestOptions) (res DeviceResult) {
	t0 := time.Now()
	sys := f.systems[id]
	class := sys.ClassKey()
	name := fmt.Sprintf("device-%d", id)
	if cfg.Tracker != nil {
		cfg.Tracker.Start(name)
	}
	mSweepInflight.Inc()
	defer func() {
		res.Class = class
		mSweepInflight.Dec()
		mSweepCompleted.With(res.Verdict()).Inc()
		if cfg.Tracker != nil {
			out := obs.SweepOutcome{Verdict: res.Verdict(), Elapsed: res.Elapsed}
			if res.Report != nil {
				out.Retries = res.Report.Retries
				out.TransportFaults = res.Report.TransportFaults
			}
			if res.Err != nil {
				out.Err = res.Err.Error()
			}
			cfg.Tracker.Done(name, out)
		}
		obs.Logger().Debug("device attested", "device", id, "class", class,
			"verdict", res.Verdict(), "elapsed", res.Elapsed)
	}()
	if err := ctx.Err(); err != nil {
		return DeviceResult{DeviceID: id, Err: err}
	}
	attest := sys.Attest
	var patched bool
	var deviceNonce uint64
	if plans != nil {
		entry := plans[class]
		if entry.err != nil {
			return DeviceResult{DeviceID: id, Err: fmt.Errorf("swarm: plan for device %d: %w", id, entry.err), Elapsed: time.Since(t0)}
		}
		plan := entry.plan
		if entry.patch {
			// Per-device freshness: re-nonce the class's shared plan for
			// this device. The patch is O(nonce column) and never mutates
			// the base, so concurrent workers patch the same plan freely.
			deviceNonce = rand.Uint64()
			pp, err := plan.WithNonce(deviceNonce)
			if err != nil {
				return DeviceResult{DeviceID: id, Err: fmt.Errorf("swarm: patching nonce for device %d: %w", id, err), Elapsed: time.Since(t0)}
			}
			plan, patched = pp, true
		}
		attest = func(o core.AttestOptions) (*verifier.Report, error) {
			return sys.AttestWithPlan(plan, o)
		}
	}
	dctx := ctx
	if cfg.PerDeviceTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, cfg.PerDeviceTimeout)
		defer cancel()
	}
	type outcome struct {
		rep *verifier.Report
		err error
	}
	done := make(chan outcome, 1)
	if cfg.Sessions != nil {
		cfg.Sessions.Add(1)
	}
	go func() {
		if cfg.Sessions != nil {
			defer cfg.Sessions.Done()
		}
		rep, err := attest(o)
		done <- outcome{rep, err}
	}()
	select {
	case oc := <-done:
		return DeviceResult{DeviceID: id, Report: oc.rep, Err: oc.err, Elapsed: time.Since(t0), PlanPatched: patched, Nonce: deviceNonce}
	case <-dctx.Done():
		// The attestation goroutine finishes on its own (the simulated
		// protocol always terminates; a TCP one hits its own timeouts)
		// and its result is discarded — the deadline verdict stands.
		return DeviceResult{DeviceID: id, Err: fmt.Errorf("swarm: device %d: %w", id, dctx.Err()), Elapsed: time.Since(t0), PlanPatched: patched, Nonce: deviceNonce}
	}
}

// AttestAll attests every device. With parallel=true the sweep uses the
// default bounded worker pool; sequential otherwise. It is the
// context-free convenience form of Sweep.
func (f *Fleet) AttestAll(parallel bool, opts func(deviceID uint64) core.AttestOptions) (*Report, error) {
	conc := 1
	if parallel {
		conc = DefaultConcurrency
	}
	return f.Sweep(context.Background(), SweepConfig{Concurrency: conc}, opts)
}
