package swarm

import (
	"context"
	"testing"

	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/obs"
	"sacha/internal/prover"
	"sacha/internal/verifier"
)

// mixedFactory provisions a two-class fleet: odd IDs on TinyLX, even on
// SmallLX — distinct geometries, so distinct ClassKeys.
func mixedFactory(id uint64) (*core.System, error) {
	geo := device.TinyLX()
	if id%2 == 0 {
		geo = device.SmallLX()
	}
	return core.NewSystem(core.Config{
		Geo:        geo,
		App:        netlist.Blinker(8),
		KeyMode:    core.KeyStatPUF,
		DeviceID:   id,
		LabLatency: -1,
		Seed:       int64(id),
	})
}

// TestPerClassHealthPartition sweeps a two-class fleet with one tampered
// member and checks Report.PerClass splits the verdicts by device class
// while the flat partition stays intact.
func TestPerClassHealthPartition(t *testing.T) {
	f, err := NewFleet(6, mixedFactory)
	if err != nil {
		t.Fatal(err)
	}
	const bad = 3 // odd → TinyLX class
	badClass := mustSystem(t, f, bad).ClassKey()
	rep := mustSweep(t, f, context.Background(), SweepConfig{Concurrency: 3}, func(id uint64) core.AttestOptions {
		if id != bad {
			return core.AttestOptions{}
		}
		sys, _ := f.System(id)
		return core.AttestOptions{TamperDevice: func(d *prover.Device) {
			d.Fabric.Mem.Frame(sys.DynFrames()[0])[1] ^= 4
		}}
	})
	if len(rep.Healthy) != 5 || len(rep.Compromised) != 1 {
		t.Fatalf("healthy=%v compromised=%v", rep.Healthy, rep.Compromised)
	}
	if len(rep.PerClass) != 2 {
		t.Fatalf("PerClass has %d classes, want 2: %v", len(rep.PerClass), rep.PerClass)
	}
	var totalHealthy, totalCompromised int
	for _, ch := range rep.PerClass {
		totalHealthy += ch.Healthy
		totalCompromised += ch.Compromised
	}
	if totalHealthy != 5 || totalCompromised != 1 {
		t.Errorf("per-class totals healthy=%d compromised=%d, want 5/1: %v",
			totalHealthy, totalCompromised, rep.PerClass)
	}
	if got := rep.PerClass[badClass]; got.Compromised != 1 {
		t.Errorf("class %q should carry the compromised member: %+v", badClass, got)
	}
	for _, r := range rep.Results {
		if r.Class == "" {
			t.Errorf("device %d result missing its class", r.DeviceID)
		}
	}
}

// TestSweepRollsUpTransportPressure injects a lossy link on every
// member and checks the per-device Retries/TransportFaults land in the
// sweep-level rollup.
func TestSweepRollsUpTransportPressure(t *testing.T) {
	f, err := NewFleet(4, tinyFactory)
	if err != nil {
		t.Fatal(err)
	}
	rep := mustSweep(t, f, context.Background(), SweepConfig{Concurrency: 2}, func(id uint64) core.AttestOptions {
		retry := sweepRetry()
		retry.MaxRetries = 10 // generous budget: the point is the rollup, not the loss rate
		return core.AttestOptions{
			Opts: verifier.Options{Retry: retry},
			WrapVerifierChannel: func(ep channel.Endpoint) channel.Endpoint {
				return channel.NewFault(ep, channel.FaultConfig{DropProb: 0.02, Seed: int64(id)})
			},
		}
	})
	if len(rep.Healthy) != 4 {
		t.Fatalf("healthy=%d (compromised=%v unreachable=%v failed=%v)",
			len(rep.Healthy), rep.Compromised, rep.Unreachable, rep.Failed)
	}
	var retries, faults int
	for _, r := range rep.Results {
		if r.Report != nil {
			retries += r.Report.Retries
			faults += r.Report.TransportFaults
		}
	}
	if retries == 0 {
		t.Fatal("lossy sweep produced zero retries — fault injection inert")
	}
	if rep.Retries != retries || rep.TransportFaults != faults {
		t.Errorf("rollup retries=%d faults=%d, per-device sums %d/%d",
			rep.Retries, rep.TransportFaults, retries, faults)
	}
}

// TestSweepFeedsTracker attaches an obs.SweepTracker and checks the
// /debug/sweep snapshot agrees with the report.
func TestSweepFeedsTracker(t *testing.T) {
	f, err := NewFleet(5, tinyFactory)
	if err != nil {
		t.Fatal(err)
	}
	tracker := obs.NewSweepTracker()
	rep := mustSweep(t, f, context.Background(), SweepConfig{Concurrency: 2, Tracker: tracker}, nil)
	snap := tracker.Snapshot()
	if snap.Total != 5 || snap.Completed != 5 || snap.InFlight != 0 {
		t.Fatalf("snapshot total=%d completed=%d inflight=%d, want 5/5/0",
			snap.Total, snap.Completed, snap.InFlight)
	}
	if snap.Verdicts[obs.VerdictHealthy] != len(rep.Healthy) {
		t.Errorf("snapshot healthy=%d, report healthy=%d",
			snap.Verdicts[obs.VerdictHealthy], len(rep.Healthy))
	}
	for _, row := range snap.Targets {
		if row.State != obs.StateDone || row.Class == "" || row.ElapsedNS <= 0 {
			t.Errorf("target row not fully populated: %+v", row)
		}
	}
}
