package swarm

import (
	"context"
	"errors"
	"testing"
	"time"

	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
	"sacha/internal/verifier"
)

// tinyFactory provisions fleet members on the TinyLX geometry, keeping
// large-fleet sweeps (and the race detector runs over them) fast.
func tinyFactory(id uint64) (*core.System, error) {
	return core.NewSystem(core.Config{
		Geo:        device.TinyLX(),
		App:        netlist.Blinker(8),
		KeyMode:    core.KeyStatPUF,
		DeviceID:   id,
		LabLatency: -1,
		Seed:       int64(id),
	})
}

// sweepRetry is the reliable-transport policy fleet sweeps use when a
// member's link is wrapped in the fault injector.
func sweepRetry() verifier.RetryPolicy {
	return verifier.RetryPolicy{
		Timeout:    25 * time.Millisecond,
		MaxRetries: 3,
		Backoff:    time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
		Seed:       1,
	}
}

// TestLargeFleetBoundedSweep is the scale check (run it under -race):
// 64 independently provisioned devices swept through the bounded pool at
// concurrency 8. Every member must attest healthy, every result must be
// populated.
func TestLargeFleetBoundedSweep(t *testing.T) {
	const fleetSize = 64
	f, err := NewFleet(fleetSize, tinyFactory)
	if err != nil {
		t.Fatal(err)
	}
	rep := mustSweep(t, f, context.Background(), SweepConfig{Concurrency: 8}, nil)
	if len(rep.Healthy) != fleetSize {
		t.Fatalf("healthy=%d compromised=%v unreachable=%v failed=%v",
			len(rep.Healthy), rep.Compromised, rep.Unreachable, rep.Failed)
	}
	if len(rep.Results) != fleetSize {
		t.Fatalf("results=%d, want %d", len(rep.Results), fleetSize)
	}
	for _, r := range rep.Results {
		if r.Report == nil || r.Elapsed <= 0 {
			t.Fatalf("device %d: incomplete result %+v", r.DeviceID, r)
		}
	}
}

// TestUnreachableVsCompromised is the classification contract: a member
// behind a dead link must land in Unreachable, a tampered member in
// Compromised, and neither bucket may contaminate the other.
func TestUnreachableVsCompromised(t *testing.T) {
	const (
		fleetSize   = 6
		tampered    = 2
		unreachable = 4
	)
	f, err := NewFleet(fleetSize, tinyFactory)
	if err != nil {
		t.Fatal(err)
	}
	rep := mustSweep(t, f, context.Background(), SweepConfig{Concurrency: 3}, func(id uint64) core.AttestOptions {
		switch id {
		case tampered:
			sys, _ := f.System(id)
			return core.AttestOptions{TamperDevice: func(d *prover.Device) {
				d.Fabric.Mem.Frame(sys.DynFrames()[3])[5] ^= 2
			}}
		case unreachable:
			return core.AttestOptions{
				Opts: verifier.Options{Retry: sweepRetry()},
				WrapVerifierChannel: func(ep channel.Endpoint) channel.Endpoint {
					return channel.NewFault(ep, channel.FaultConfig{DropProb: 1})
				},
			}
		}
		return core.AttestOptions{}
	})
	if len(rep.Compromised) != 1 || rep.Compromised[0] != tampered {
		t.Fatalf("compromised = %v, want [%d]", rep.Compromised, tampered)
	}
	if len(rep.Unreachable) != 1 || rep.Unreachable[0] != unreachable {
		t.Fatalf("unreachable = %v, want [%d]", rep.Unreachable, unreachable)
	}
	if len(rep.Healthy) != fleetSize-2 {
		t.Fatalf("healthy = %v", rep.Healthy)
	}
	for _, r := range rep.Results {
		if r.DeviceID == unreachable && !verifier.IsTransport(r.Err) {
			t.Fatalf("unreachable member's error is not typed: %v", r.Err)
		}
	}
}

// TestPerDeviceTimeoutIsUnreachable: a member whose attestation cannot
// finish inside the per-device deadline is reported Unreachable with the
// deadline error; the rest of the fleet is unaffected.
func TestPerDeviceTimeoutIsUnreachable(t *testing.T) {
	const slow = 2
	f, err := NewFleet(3, tinyFactory)
	if err != nil {
		t.Fatal(err)
	}
	// The slow member's link drops everything; its own retry budget
	// (~4 x 2.5s) far exceeds the 3s per-device deadline, so the deadline
	// fires first and the abandoned attempt still terminates on its own
	// shortly after. The deadline leaves healthy members a wide margin:
	// a TinyLX attestation finishes in well under a second even with the
	// race detector on a loaded machine.
	rep := mustSweep(t, f, context.Background(), SweepConfig{Concurrency: 2, PerDeviceTimeout: 3 * time.Second},
		func(id uint64) core.AttestOptions {
			if id != slow {
				return core.AttestOptions{}
			}
			return core.AttestOptions{
				Opts: verifier.Options{Retry: verifier.RetryPolicy{
					Timeout: 2500 * time.Millisecond, MaxRetries: 3, Backoff: time.Millisecond,
				}},
				WrapVerifierChannel: func(ep channel.Endpoint) channel.Endpoint {
					return channel.NewFault(ep, channel.FaultConfig{DropProb: 1})
				},
			}
		})
	if len(rep.Unreachable) != 1 || rep.Unreachable[0] != slow {
		t.Fatalf("unreachable = %v, want [%d]", rep.Unreachable, slow)
	}
	if len(rep.Healthy) != 2 {
		t.Fatalf("healthy = %v", rep.Healthy)
	}
	for _, r := range rep.Results {
		if r.DeviceID == slow && !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("slow member error = %v, want DeadlineExceeded", r.Err)
		}
	}
}

// TestSweepCancellation: a cancelled context fails the not-yet-started
// members fast, as Unreachable carrying ctx's error — the sweep never
// wedges on a dead operator console.
func TestSweepCancellation(t *testing.T) {
	f, err := NewFleet(8, tinyFactory)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := mustSweep(t, f, ctx, SweepConfig{Concurrency: 2}, nil)
	if len(rep.Unreachable) != f.Size() {
		t.Fatalf("unreachable=%v healthy=%v failed=%v", rep.Unreachable, rep.Healthy, rep.Failed)
	}
	for _, r := range rep.Results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("device %d: error %v, want context.Canceled", r.DeviceID, r.Err)
		}
	}
}
