// Command sacha-bench measures the attestation data path and emits the
// results as JSON (BENCH_attest.json by default), so the performance
// trajectory — frames/sec, ns/frame, plan-build and plan-cache times — is
// tracked from commit to commit instead of living in scrollback:
//
//	sacha-bench -device TinyLX -delay 1ms -windows 1,4,16 -o BENCH_attest.json
//
// Each configured window size runs one full attestation against an
// in-process prover over a channel.DelayEndpoint with the given one-way
// latency: window 1 is the paper's lockstep exchange (one round trip per
// frame), larger windows pipeline the configuration and readback phases.
// The plan section reports a cold attestation.NewPlan build against a
// PlanCache hit for the same spec.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
)

type phaseResult struct {
	ConfigNS   int64 `json:"config_ns"`
	ReadbackNS int64 `json:"readback_ns"`
	ChecksumNS int64 `json:"checksum_ns"`
	VerdictNS  int64 `json:"verdict_ns"`
}

type runResult struct {
	Window       int         `json:"window"`
	WallNS       int64       `json:"wall_ns"`
	Frames       int         `json:"frames"`
	FramesPerSec float64     `json:"frames_per_sec"`
	NSPerFrame   float64     `json:"ns_per_frame"`
	Retries      int         `json:"retries"`
	Accepted     bool        `json:"accepted"`
	Phases       phaseResult `json:"phases"`
}

type planResult struct {
	ColdBuildNS int64 `json:"cold_build_ns"`
	CacheHitNS  int64 `json:"cache_hit_ns"`
}

type benchReport struct {
	Timestamp  string      `json:"timestamp"`
	Device     string      `json:"device"`
	Frames     int         `json:"frames"`
	DelayNS    int64       `json:"delay_one_way_ns"`
	Iterations int         `json:"iterations"`
	Plan       planResult  `json:"plan"`
	Runs       []runResult `json:"runs"`
}

func main() {
	devName := flag.String("device", "TinyLX", "device geometry")
	delay := flag.Duration("delay", time.Millisecond, "one-way link latency")
	windows := flag.String("windows", "1,4,16", "comma-separated window sizes to measure")
	iters := flag.Int("iters", 1, "attestations per window size (best wall time is reported)")
	out := flag.String("o", "BENCH_attest.json", "output file (- for stdout)")
	flag.Parse()

	geo, err := device.ByName(*devName)
	fatal(err)
	app := netlist.Blinker(8)
	const buildID, nonce = 0xD00D, 0xCAFEBABE
	key := prover.RegisterKey{3, 1, 4, 1, 5}

	golden, dyn, err := core.BuildGolden(geo, app, buildID, nonce)
	fatal(err)
	spec := attestation.Spec{Geo: geo, Golden: golden, DynFrames: dyn}

	// Plan economics: one cold build, then a cache hit for the same spec.
	cache := attestation.NewPlanCache(0)
	t0 := time.Now()
	plan, built, err := cache.GetOrBuild(spec)
	fatal(err)
	cold := time.Since(t0)
	if !built {
		fatal(fmt.Errorf("first GetOrBuild did not build"))
	}
	t0 = time.Now()
	if _, built, err = cache.GetOrBuild(spec); err != nil || built {
		fatal(fmt.Errorf("second GetOrBuild rebuilt (err=%v)", err))
	}
	hit := time.Since(t0)

	report := benchReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Device:     geo.Name,
		Frames:     plan.NumFrames(),
		DelayNS:    delay.Nanoseconds(),
		Iterations: *iters,
		Plan:       planResult{ColdBuildNS: cold.Nanoseconds(), CacheHitNS: hit.Nanoseconds()},
	}

	for _, tok := range strings.Split(*windows, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(tok))
		fatal(err)
		report.Runs = append(report.Runs, measure(geo, plan, key, buildID, w, *delay, *iters))
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	fatal(err)
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	fatal(os.WriteFile(*out, enc, 0o644))
	fmt.Printf("sacha-bench: wrote %s (%d window sizes, %d frames, %v one-way)\n",
		*out, len(report.Runs), report.Frames, *delay)
}

// measure runs iters attestations at one window size over a fresh delayed
// link per iteration and reports the best wall time — the standard guard
// against scheduler noise in a one-shot benchmark.
func measure(geo *device.Geometry, plan *attestation.Plan, key prover.RegisterKey, buildID uint64, window int, delay time.Duration, iters int) runResult {
	res := runResult{Window: window}
	for it := 0; it < iters; it++ {
		dev, err := prover.New(prover.Config{Geo: geo, BootMem: core.BuildBootMem(geo, buildID), Key: key})
		fatal(err)
		fatal(dev.PowerOn())
		vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
		go dev.Serve(prvEP)
		link := channel.NewDelayEndpoint(vrfEP, delay)

		opts := attestation.RunOpts{Key: key}
		opts.Retry = attestation.RetryPolicy{
			Timeout:    4*delay + 250*time.Millisecond,
			MaxRetries: 5,
			Window:     window,
		}
		t0 := time.Now()
		rep, err := plan.Run(link, opts)
		wall := time.Since(t0)
		link.Close()
		fatal(err)

		if res.WallNS == 0 || wall.Nanoseconds() < res.WallNS {
			res.WallNS = wall.Nanoseconds()
			res.Frames = rep.FramesRead
			res.Retries = rep.Retries
			res.Accepted = rep.Accepted
			res.Phases = phaseResult{
				ConfigNS:   rep.Phases.Config.Nanoseconds(),
				ReadbackNS: rep.Phases.Readback.Nanoseconds(),
				ChecksumNS: rep.Phases.Checksum.Nanoseconds(),
				VerdictNS:  rep.Phases.Verdict.Nanoseconds(),
			}
		}
	}
	res.FramesPerSec = float64(res.Frames) / (float64(res.WallNS) / float64(time.Second))
	res.NSPerFrame = float64(res.WallNS) / float64(res.Frames)
	return res
}

func fatal(err error) {
	if err != nil {
		log.Fatal("sacha-bench: ", err)
	}
}
