// Command sacha-bench measures the attestation data path and emits the
// results as JSON (BENCH_attest.json by default), so the performance
// trajectory — frames/sec, ns/frame, plan-build and plan-cache times — is
// tracked from commit to commit instead of living in scrollback:
//
//	sacha-bench -device TinyLX -delay 1ms -windows 1,4,16 -o BENCH_attest.json
//
// Each configured window size runs one full attestation against an
// in-process prover over a channel.DelayEndpoint with the given one-way
// latency: window 1 is the paper's lockstep exchange (one round trip per
// frame), larger windows pipeline the configuration and readback phases.
// The plan section reports a cold attestation.NewPlan build against a
// PlanCache hit for the same spec.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
)

type phaseResult struct {
	ConfigNS   int64 `json:"config_ns"`
	ReadbackNS int64 `json:"readback_ns"`
	ChecksumNS int64 `json:"checksum_ns"`
	VerdictNS  int64 `json:"verdict_ns"`
}

type runResult struct {
	Window       int         `json:"window"`
	WallNS       int64       `json:"wall_ns"`
	Frames       int         `json:"frames"`
	FramesPerSec float64     `json:"frames_per_sec"`
	NSPerFrame   float64     `json:"ns_per_frame"`
	Retries      int         `json:"retries"`
	Accepted     bool        `json:"accepted"`
	Phases       phaseResult `json:"phases"`
}

type planResult struct {
	ColdBuildNS int64 `json:"cold_build_ns"`
	CacheHitNS  int64 `json:"cache_hit_ns"`
}

// deltaRun is one delta-mode measurement: the same link and window as a
// baseline full-overwrite run, against a device in a known state —
// warm-healthy (delta applies), cold (admissibility fallback) or
// tampered (scan catches drift, fallback repairs). ConfigSpeedup is the
// config-phase ratio against the full overwrite at the same window; the
// delta config phase includes the Hello negotiation and the scan, so
// the ratio charges delta mode its own overheads.
type deltaRun struct {
	Scenario        string  `json:"scenario"`
	Window          int     `json:"window"`
	WallNS          int64   `json:"wall_ns"`
	ConfigNS        int64   `json:"config_ns"`
	BaselineConfNS  int64   `json:"baseline_config_ns"`
	ConfigSpeedup   float64 `json:"config_speedup"`
	FramesScanned   int     `json:"frames_scanned"`
	FramesRewritten int     `json:"frames_rewritten"`
	FramesSkipped   int     `json:"frames_skipped"`
	Fallback        string  `json:"fallback,omitempty"`
	Compressed      bool    `json:"compressed"`
	Accepted        bool    `json:"accepted"`
}

type benchReport struct {
	Timestamp  string      `json:"timestamp"`
	Device     string      `json:"device"`
	Frames     int         `json:"frames"`
	DelayNS    int64       `json:"delay_one_way_ns"`
	Iterations int         `json:"iterations"`
	Plan       planResult  `json:"plan"`
	Runs       []runResult `json:"runs"`
	Delta      []deltaRun  `json:"delta,omitempty"`
}

func main() {
	devName := flag.String("device", "TinyLX", "device geometry")
	delay := flag.Duration("delay", time.Millisecond, "one-way link latency")
	windows := flag.String("windows", "1,4,16", "comma-separated window sizes to measure")
	iters := flag.Int("iters", 1, "attestations per window size (best wall time is reported)")
	benchDelta := flag.Bool("delta", false, "also measure the delta configuration series (warm-healthy, cold, tampered-4) per window")
	minSpeedup := flag.Float64("delta-min-speedup", 0, "fail unless every warm-healthy delta run beats the full overwrite's config phase by this factor (0 = report only)")
	out := flag.String("o", "BENCH_attest.json", "output file (- for stdout)")
	flag.Parse()

	geo, err := device.ByName(*devName)
	fatal(err)
	app := netlist.Blinker(8)
	const buildID, nonce = 0xD00D, 0xCAFEBABE
	key := prover.RegisterKey{3, 1, 4, 1, 5}

	golden, dyn, err := core.BuildGolden(geo, app, buildID, nonce)
	fatal(err)
	spec := attestation.Spec{Geo: geo, Golden: golden, DynFrames: dyn}

	// Plan economics: one cold build, then a cache hit for the same spec.
	cache := attestation.NewPlanCache(0)
	t0 := time.Now()
	plan, built, err := cache.GetOrBuild(spec)
	fatal(err)
	cold := time.Since(t0)
	if !built {
		fatal(fmt.Errorf("first GetOrBuild did not build"))
	}
	t0 = time.Now()
	if _, built, err = cache.GetOrBuild(spec); err != nil || built {
		fatal(fmt.Errorf("second GetOrBuild rebuilt (err=%v)", err))
	}
	hit := time.Since(t0)

	report := benchReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Device:     geo.Name,
		Frames:     plan.NumFrames(),
		DelayNS:    delay.Nanoseconds(),
		Iterations: *iters,
		Plan:       planResult{ColdBuildNS: cold.Nanoseconds(), CacheHitNS: hit.Nanoseconds()},
	}

	for _, tok := range strings.Split(*windows, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(tok))
		fatal(err)
		report.Runs = append(report.Runs, measure(geo, plan, key, buildID, w, *delay, *iters))
	}

	if *benchDelta {
		dspec := spec
		dspec.Delta, dspec.Compress = true, true
		dplan, err := attestation.NewPlan(dspec)
		fatal(err)
		for _, run := range report.Runs {
			for _, scenario := range []string{"warm-healthy", "cold", "tampered-4"} {
				dr := measureDelta(geo, plan, dplan, dyn, key, buildID, run.Window, *delay, *iters, scenario, run.Phases.ConfigNS)
				report.Delta = append(report.Delta, dr)
				if scenario == "warm-healthy" && *minSpeedup > 0 && dr.ConfigSpeedup < *minSpeedup {
					fatal(fmt.Errorf("warm-healthy delta config phase only %.2fx faster than the full overwrite at window %d (bar: %.1fx)",
						dr.ConfigSpeedup, run.Window, *minSpeedup))
				}
			}
		}
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	fatal(err)
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	fatal(os.WriteFile(*out, enc, 0o644))
	fmt.Printf("sacha-bench: wrote %s (%d window sizes, %d frames, %v one-way)\n",
		*out, len(report.Runs), report.Frames, *delay)
}

// measure runs iters attestations at one window size over a fresh delayed
// link per iteration and reports the best wall time — the standard guard
// against scheduler noise in a one-shot benchmark.
func measure(geo *device.Geometry, plan *attestation.Plan, key prover.RegisterKey, buildID uint64, window int, delay time.Duration, iters int) runResult {
	res := runResult{Window: window}
	for it := 0; it < iters; it++ {
		dev, err := prover.New(prover.Config{Geo: geo, BootMem: core.BuildBootMem(geo, buildID), Key: key})
		fatal(err)
		fatal(dev.PowerOn())
		vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
		go dev.Serve(prvEP)
		link := channel.NewDelayEndpoint(vrfEP, delay)

		opts := attestation.RunOpts{Key: key}
		opts.Retry = attestation.RetryPolicy{
			Timeout:    4*delay + 250*time.Millisecond,
			MaxRetries: 5,
			Window:     window,
		}
		t0 := time.Now()
		rep, err := plan.Run(link, opts)
		wall := time.Since(t0)
		link.Close()
		fatal(err)

		if res.WallNS == 0 || wall.Nanoseconds() < res.WallNS {
			res.WallNS = wall.Nanoseconds()
			res.Frames = rep.FramesRead
			res.Retries = rep.Retries
			res.Accepted = rep.Accepted
			res.Phases = phaseResult{
				ConfigNS:   rep.Phases.Config.Nanoseconds(),
				ReadbackNS: rep.Phases.Readback.Nanoseconds(),
				ChecksumNS: rep.Phases.Checksum.Nanoseconds(),
				VerdictNS:  rep.Phases.Verdict.Nanoseconds(),
			}
		}
	}
	res.FramesPerSec = float64(res.Frames) / (float64(res.WallNS) / float64(time.Second))
	res.NSPerFrame = float64(res.WallNS) / float64(res.Frames)
	return res
}

// measureDelta runs iters delta attestations at one window size against
// a device prepared per scenario: warm-healthy re-attests a device that
// just passed a full attestation, cold attests a fresh device without
// the admissibility assertion, tampered-4 flips one bit in each of four
// non-nonce dynamic frames of a warm device. The warm-up attestation
// runs over an undelayed link — it models the PREVIOUS sweep, not part
// of the measured session.
func measureDelta(geo *device.Geometry, fullPlan, deltaPlan *attestation.Plan, dyn []int, key prover.RegisterKey, buildID uint64, window int, delay time.Duration, iters int, scenario string, baselineConfNS int64) deltaRun {
	res := deltaRun{Scenario: scenario, Window: window, BaselineConfNS: baselineConfNS}
	inRewriteSet := map[int]bool{}
	for _, f := range deltaPlan.DeltaRewriteFrames() {
		inRewriteSet[f] = true
	}
	for it := 0; it < iters; it++ {
		dev, err := prover.New(prover.Config{Geo: geo, BootMem: core.BuildBootMem(geo, buildID), Key: key})
		fatal(err)
		fatal(dev.PowerOn())

		warm := scenario != "cold"
		if warm {
			vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
			go dev.Serve(prvEP)
			rep, err := fullPlan.Run(vrfEP, attestation.RunOpts{Key: key,
				Retry: attestation.RetryPolicy{Timeout: time.Second, MaxRetries: 3, Window: attestation.MaxWindow}})
			fatal(err)
			if !rep.Accepted {
				fatal(fmt.Errorf("delta warm-up attestation rejected"))
			}
			vrfEP.Close()
		}
		if strings.HasPrefix(scenario, "tampered") {
			flips := 4
			for _, f := range dyn {
				if flips == 0 {
					break
				}
				if inRewriteSet[f] {
					continue
				}
				dev.Fabric.Mem.Frame(f)[1] ^= 1 << 11
				flips--
			}
		}

		vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
		go dev.Serve(prvEP)
		link := channel.NewDelayEndpoint(vrfEP, delay)
		opts := attestation.RunOpts{Key: key, Delta: true, DeltaWarm: warm, Compress: true,
			Retry: attestation.RetryPolicy{Timeout: 4*delay + 250*time.Millisecond, MaxRetries: 5, Window: window}}
		t0 := time.Now()
		rep, err := deltaPlan.Run(link, opts)
		wall := time.Since(t0)
		link.Close()
		fatal(err)

		if res.WallNS == 0 || wall.Nanoseconds() < res.WallNS {
			res.WallNS = wall.Nanoseconds()
			res.ConfigNS = rep.Phases.Config.Nanoseconds()
			res.FramesScanned = rep.Delta.FramesScanned
			res.FramesRewritten = rep.Delta.FramesRewritten
			res.FramesSkipped = rep.Delta.FramesSkipped
			res.Fallback = rep.Delta.Fallback
			res.Compressed = rep.Compressed
			res.Accepted = rep.Accepted
		}
	}
	if res.ConfigNS > 0 {
		res.ConfigSpeedup = float64(res.BaselineConfNS) / float64(res.ConfigNS)
	}
	return res
}

func fatal(err error) {
	if err != nil {
		log.Fatal("sacha-bench: ", err)
	}
}
