// Command sacha-prover runs a SACHa device as a TCP server.
//
// The device boots its static partition from a synthesised boot flash
// (derived from -build) and answers attestation commands. Verify it with
// sacha-verifier using the same -device, -build and -key values (in a
// real deployment the key is enrolled from the device's PUF; the tools
// model the post-enrollment state).
//
//	sacha-prover -listen :4242 -device SmallLX -build 1 -key 000102…0f
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"

	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/prover"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:4242", "address to listen on")
	devName := flag.String("device", "SmallLX", "device geometry")
	buildID := flag.Uint64("build", 1, "static bitstream build ID")
	keyHex := flag.String("key", "000102030405060708090a0b0c0d0e0f", "enrolled MAC key (32 hex chars)")
	flag.Parse()

	geo, err := device.ByName(*devName)
	if err != nil {
		log.Fatal(err)
	}
	key, err := parseKey(*keyHex)
	if err != nil {
		log.Fatal(err)
	}

	dev, err := prover.New(prover.Config{
		Geo:     geo,
		BootMem: core.BuildBootMem(geo, *buildID),
		Key:     prover.RegisterKey(key),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.PowerOn(); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("sacha-prover: device %s powered on, listening on %s", geo.Name, ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("sacha-prover: verifier connected from %s", conn.RemoteAddr())
		ep := channel.NewTCP(conn)
		if err := dev.Serve(ep); err != nil {
			log.Printf("sacha-prover: session ended: %v", err)
		} else {
			log.Printf("sacha-prover: session complete (%d frames written, %d read back)",
				dev.Port.FramesWritten(), dev.Port.FramesRead())
		}
		ep.Close()
	}
}

func parseKey(s string) ([16]byte, error) {
	var key [16]byte
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != 16 {
		return key, fmt.Errorf("key must be 32 hex characters")
	}
	copy(key[:], raw)
	return key, nil
}
