// Command sacha-fleetd runs the fleet coordinator: a long-lived daemon
// that provisions an in-process mixed-geometry fleet, sweeps it through
// the sharded dispatcher, and exposes a JSON control API on the
// observability endpoint:
//
//	sacha-fleetd -fleet 32 -shards 4 -freshness per-device \
//	             -obs-addr 127.0.0.1:9090 -every 30s -jitter 5s
//
//	curl -X POST localhost:9090/fleet/sweep      # trigger a sweep
//	curl localhost:9090/fleet/status             # daemon + last sweep
//	curl localhost:9090/fleet/sweeps             # sweep history
//	curl localhost:9090/fleet/devices            # membership + shards
//	curl localhost:9090/debug/sweep              # live per-device rows
//	curl localhost:9090/debug/trace              # causal span trees (JSON)
//	curl localhost:9090/debug/trace/perfetto     # Chrome trace_event export
//	curl localhost:9090/fleet/flightrecords      # non-Healthy post-mortems
//
// -every enables continuous re-attestation: every device class gets
// its own scheduler loop with that cadence (plus up to -jitter of
// seeded spread, so classes de-synchronize). Without -every the daemon
// sweeps only on POST /fleet/sweep.
//
// On SIGINT/SIGTERM the daemon drains gracefully: the API refuses new
// sweeps with 503, the in-flight sweep finishes (bounded by
// -drain-grace), every attestation session is joined, and the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/channel"
	"sacha/internal/cliutil"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/fleet"
	"sacha/internal/fleet/dispatch"
	"sacha/internal/fleet/fleetd"
	"sacha/internal/fleet/registry"
	"sacha/internal/fleet/scheduler"
	"sacha/internal/netlist"
	"sacha/internal/obs"
	"sacha/internal/obs/span"
	"sacha/internal/prover"
	"sacha/internal/store"
)

func main() {
	fleetSize := flag.Int("fleet", 16, "fleet size (odd IDs TinyLX, even SmallLX)")
	seed := flag.Int64("seed", 1, "fleet provisioning seed (per-device PUF/SRAM state derives from it)")
	buildID := flag.Uint64("build", 0xF1EE7, "static bitstream build ID shared by the fleet")
	shards := flag.Int("shards", 4, "verifier shards (class-affinity routed, work-stealing)")
	planCache := flag.Int("plan-cache", 8, "per-shard plan-cache capacity (0 disables; warm sweeps then rebuild plans)")
	concurrency := flag.Int("concurrency", fleet.DefaultConcurrency, "attestation sessions in flight across all shards")
	freshness := flag.String("freshness", "per-device", "nonce freshness policy: per-sweep, per-device or rotate-key")
	timeout := flag.Duration("device-timeout", 0, "per-device attestation deadline (0 = none)")
	every := flag.Duration("every", 0, "re-attest each device class on this cadence (0 = API-triggered sweeps only)")
	jitter := flag.Duration("jitter", 0, "seeded per-class cadence spread added to -every")
	compress := flag.Bool("compress", false, "negotiate the compressed wire transport per session")
	delta := flag.Bool("delta", false, "delta configuration: scan warm devices and rewrite only their nonce frames (first sweep per device is a full overwrite)")
	history := flag.Int("history", 64, "sweep records retained for /fleet/sweeps")
	spans := flag.Bool("spans", true, "collect causal span traces (served at /debug/trace and /debug/trace/perfetto)")
	spanCap := flag.Int("span-cap", span.DefaultCap, "span collector retention (spans; oldest traces evicted)")
	flightDir := flag.String("flight-dir", "", "flight-recorder artifact directory (empty = in-memory records only)")
	flightMax := flag.Int("flight-max", span.DefaultMaxRecords, "flight records retained (memory and on disk)")
	tamper := flag.Int64("tamper", -1, "flip one dynamic-frame bit on this device ID before every readback (demo/smoke: yields a Compromised verdict and a flight record)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "shutdown bound for the in-flight sweep before it is cancelled (0 = wait)")
	stateDir := flag.String("state-dir", "", "durable state directory: enrollment store + anti-replay nonce journal survive restarts (empty = in-memory only)")
	fsyncPolicy := flag.String("fsync", "always", "state-dir durability policy: always (fsync per append) or batch (fsync on snapshot/close)")
	nonceTTL := flag.Duration("nonce-ttl", 24*time.Hour, "spent-nonce retention; keep at or above the key-rotation cadence (0 = never expire)")
	linkDelay := flag.Duration("link-delay", 0, "one-way verifier-link latency added per message (0 = none)")
	obsFlags := cliutil.RegisterObs(flag.CommandLine, "127.0.0.1:9090")
	flag.Parse()

	policy, err := attestation.ParseFreshnessPolicy(*freshness)
	fatal(err)

	// The in-process fleet mirrors the campaign harness's layout: mixed
	// TinyLX/SmallLX geometries and DynPart-PUF keys, so every freshness
	// policy (rotate-key included) is exercisable, and two classes give
	// the affinity router something to route.
	factory := func(id uint64) (*core.System, error) {
		geo := device.TinyLX()
		if id%2 == 0 {
			geo = device.SmallLX()
		}
		return core.NewSystem(core.Config{
			Geo:        geo,
			App:        netlist.Blinker(8),
			KeyMode:    core.KeyDynPUF,
			DeviceID:   id,
			BuildID:    *buildID,
			LabLatency: -1,
			Seed:       *seed*0x1000193 + int64(id),
		})
	}

	// With -state-dir the fleet boots through the durable registry: key
	// generations resume from the enrollment store (RotateKey bumps are
	// journaled before the new key serves) and every issued nonce is
	// spent against the on-disk anti-replay journal.
	var (
		reg  registry.Registry
		st   *store.Store
		dreg *registry.Durable
	)
	if *stateDir != "" {
		pol, err := store.ParseSyncPolicy(*fsyncPolicy)
		fatal(err)
		st, err = store.Open(*stateDir, store.Options{Sync: pol, NonceTTL: *nonceTTL})
		fatal(err)
		dreg, err = registry.NewDurable(*fleetSize, factory, st.Enrollment())
		fatal(err)
		reg = dreg
	} else {
		sreg, err := registry.New(*fleetSize, factory)
		fatal(err)
		reg = sreg
	}

	template := fleet.SweepConfig{
		Concurrency:      *concurrency,
		PerDeviceTimeout: *timeout,
		SharePlans:       true,
		Freshness:        policy,
		Compress:         *compress,
	}
	if st != nil {
		template.Nonces = st.Nonces()
	}
	if *delta {
		// The ledger lives for the daemon's lifetime: warmth recorded by
		// one sweep admits the delta path in the next, which is what makes
		// the continuous re-attestation loops cheap after their first pass.
		// A durable registry persists the warmth, so the loops stay cheap
		// across restarts too.
		template.Delta = true
		if dreg != nil {
			template.Trust = dreg.Ledger()
		} else {
			template.Trust = registry.NewTrustLedger()
		}
	}
	if *spans {
		template.Spans = span.NewCollector(*spanCap)
	}
	if *spans || *flightDir != "" {
		rec, err := span.NewRecorder(*flightDir, *flightMax, nil)
		fatal(err)
		template.Flight = rec
	}

	var attestOpts func(uint64) core.AttestOptions
	if *tamper >= 0 {
		bad := uint64(*tamper)
		attestOpts = func(id uint64) core.AttestOptions {
			if id != bad {
				return core.AttestOptions{}
			}
			sys, ok := reg.System(id)
			if !ok {
				return core.AttestOptions{}
			}
			return core.AttestOptions{TamperDevice: func(d *prover.Device) {
				d.Fabric.Mem.Frame(sys.DynFrames()[1])[2] ^= 4
			}}
		}
	}
	if *linkDelay > 0 {
		// Real-time link latency (the crash-recovery rig uses it to hold a
		// sweep in flight long enough to SIGKILL the daemon mid-sweep).
		base := attestOpts
		delay := *linkDelay
		attestOpts = func(id uint64) core.AttestOptions {
			var o core.AttestOptions
			if base != nil {
				o = base(id)
			}
			o.WrapVerifierChannel = func(ep channel.Endpoint) channel.Endpoint {
				return channel.NewDelayEndpoint(ep, delay)
			}
			return o
		}
	}

	daemon := fleetd.New(fleetd.Config{
		Registry:   reg,
		Dispatcher: dispatch.New(dispatch.Config{Shards: *shards, PlanCacheSize: *planCache}),
		Template:   template,
		Opts:       attestOpts,
		Scheduler: scheduler.Config{
			Default: scheduler.Cadence{Every: *every, Jitter: *jitter},
			Seed:    *seed,
		},
		History:    *history,
		DrainGrace: *drainGrace,
	})

	bound, stopObs, err := obsFlags.Start("sacha-fleetd", daemon.Tracker(), daemon.Routes()...)
	fatal(err)
	defer stopObs()
	if bound != nil {
		fmt.Fprintf(os.Stderr, "sacha-fleetd: fleet control API on http://%s/fleet/{devices,sweeps,sweep,status}\n", bound)
	}
	obs.Logger().Info("fleetd up", "fleet", *fleetSize, "shards", *shards,
		"freshness", policy.String(), "every", *every, "obs", obsFlags.Addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	daemon.Run(ctx)
	if st != nil {
		// The drain has joined every session; flush and close the state
		// files so the final appends are durable before exit.
		fatal(st.Close())
	}
	fmt.Fprintln(os.Stderr, "sacha-fleetd: drained, exiting")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sacha-fleetd:", err)
		os.Exit(1)
	}
}
