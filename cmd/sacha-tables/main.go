// Command sacha-tables regenerates every table and figure of the paper's
// evaluation from the model:
//
//	sacha-tables -table 2        FPGA resources (Table 2)
//	sacha-tables -table 3        per-action timing (Table 3)
//	sacha-tables -table3-live    Table 3 measured from an instrumented run
//	sacha-tables -table 4        protocol totals (Table 4) + JTAG reference
//	sacha-tables -fig 8          SACHa protocol trace (Fig. 8)
//	sacha-tables -fig 9          low-level protocol trace (Fig. 9)
//	sacha-tables -security       §7.2 adversary matrix
//	sacha-tables -all            everything
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sacha/internal/apps"
	"sacha/internal/attack"
	"sacha/internal/compress"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/obs"
	"sacha/internal/resources"
	"sacha/internal/timing"
	"sacha/internal/trace"
	"sacha/internal/verifier"
)

func main() {
	table := flag.Int("table", 0, "reproduce Table N (2, 3 or 4)")
	tableLive := flag.Bool("table3-live", false, "Table 3 aggregated live from an instrumented attestation (trace → obs bridge)")
	fig := flag.Int("fig", 0, "reproduce Figure N (8 or 9)")
	security := flag.Bool("security", false, "run the §7.2 adversary matrix")
	ablations := flag.Bool("ablations", false, "print the ablation sweeps (batching, device size, compression)")
	all := flag.Bool("all", false, "reproduce everything")
	devName := flag.String("device", "XC6VLX240T", "device geometry")
	secDevName := flag.String("security-device", "SmallLX", "device for the (protocol-heavy) security matrix")
	appName := flag.String("app", "blinker16", "intended application for protocol traces")
	flag.Parse()

	geo, err := device.ByName(*devName)
	fatal(err)

	if *all {
		*table = -1
		*fig = -1
		*security = true
		*ablations = true
	}
	ran := false
	if *table == 2 || *table == -1 {
		printTable2(geo)
		ran = true
	}
	if *table == 3 || *table == -1 {
		printTable3(geo)
		ran = true
	}
	if *tableLive || *table == -1 {
		printTable3Live(*appName)
		ran = true
	}
	if *table == 4 || *table == -1 {
		printTable4(geo)
		ran = true
	}
	if *fig == 8 || *fig == -1 {
		printProtocolTrace(*appName, false)
		ran = true
	}
	if *fig == 9 || *fig == -1 {
		printProtocolTrace(*appName, true)
		ran = true
	}
	if *security {
		printSecurityMatrix(*secDevName, *appName)
		ran = true
	}
	if *ablations {
		printAblations(geo, *appName)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sacha-tables:", err)
		os.Exit(1)
	}
}

func printTable2(geo *device.Geometry) {
	fmt.Printf("== Table 2: FPGA resources of the SACHa architecture (%s) ==\n", geo.Name)
	fmt.Print(resources.Format(resources.Table2(geo)))
	fmt.Printf("StatPart occupies %.1f%% of the device (paper: < 9%%)\n\n",
		resources.StatPartFraction(geo)*100)
}

func printTable3(geo *device.Geometry) {
	m := timing.NewModel(geo)
	fmt.Printf("== Table 3: timing of the low-level protocol steps (%s) ==\n", geo.Name)
	fmt.Printf("%-5s %-32s %12s\n", "", "Action", "Time")
	for _, row := range m.Table3() {
		fmt.Printf("A%-4d %-32s %9d ns\n", int(row.Action), row.Action.Description(), row.Time.Nanoseconds())
	}
	fmt.Println()
}

// printTable3Live reproduces Table 3 from measurement instead of the
// analytic model: it runs one attestation with a trace.Log bridged into
// an obs.TraceSink and prints the sink's per-action aggregation. The
// run uses the small device so it finishes instantly; virtual durations
// still follow the XC6VLX240T action model.
func printTable3Live(appName string) {
	app, err := apps.ByName(appName)
	fatal(err)
	sys, err := core.NewSystem(core.Config{
		Geo:        device.SmallLX(),
		App:        app,
		LabLatency: -1,
		Seed:       1,
	})
	fatal(err)
	sink := obs.NewTraceSink(obs.NewRegistry())
	events := trace.NewLog(1) // aggregates live in the sink; retain next to nothing
	events.SetSink(sink)
	rep, err := sys.Attest(core.AttestOptions{Opts: verifier.Options{Events: events}})
	fatal(err)
	fmt.Printf("== Table 3 (live): per-action timing aggregated from an instrumented run (device %s, app %s) ==\n",
		sys.Geo.Name, appName)
	fatal(sink.Table(os.Stdout))
	fmt.Printf("accepted: %v\n\n", rep.Accepted)
}

func printTable4(geo *device.Geometry) {
	m := timing.NewModel(geo)
	tab := m.Table4()
	fmt.Printf("== Table 4: total timing of the SACHa protocol (%s) ==\n", geo.Name)
	fmt.Printf("%-5s %14s %16s\n", "", "Number of times", "Time")
	for _, row := range tab.Rows {
		fmt.Printf("A%-4d %14d %16s\n", int(row.Action), row.Count, fmtDur(row.Total))
	}
	fmt.Printf("%-5s %14s %16s   (paper: 1.443 s)\n", "", "Theoretical", fmtDur(tab.Theoretical))
	fmt.Printf("%-5s %14s %16s   (paper: 28.5 s)\n", "", "Measured", fmtDur(tab.Measured))
	fmt.Printf("Reference: direct JTAG configuration of the full device: %s (paper: around 28 s)\n\n",
		fmtDur(m.JTAGConfigTime()))
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.3f µs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.3f ms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3f s", d.Seconds())
	}
}

func printProtocolTrace(appName string, lowLevel bool) {
	// Protocol traces run on the small device so they finish instantly;
	// the message structure is identical on the XC6VLX240T.
	app, err := apps.ByName(appName)
	fatal(err)
	sys, err := core.NewSystem(core.Config{
		Geo:        device.SmallLX(),
		App:        app,
		LabLatency: -1,
		Seed:       1,
	})
	fatal(err)
	which := "Fig. 8: SACHa protocol"
	if lowLevel {
		which = "Fig. 9: low-level communication steps"
	}
	fmt.Printf("== %s (device %s, app %s) ==\n", which, sys.Geo.Name, appName)
	opts := core.AttestOptions{Opts: verifier.Options{Trace: os.Stdout}}
	var events *trace.Log
	if lowLevel {
		opts.Opts.Offset = 137 // a non-zero offset i, as in Fig. 9
		events = trace.NewLog(8)
		opts.Opts.Events = events
	}
	rep, err := sys.Attest(opts)
	fatal(err)
	if events != nil {
		fmt.Println("first protocol steps (virtual time on the XC6VLX240T action model):")
		fatal(events.Render(os.Stdout, 8))
	}
	fmt.Printf("result: H_Prv == H_Vrf: %v; B_Prv == B_Vrf: %v; accepted: %v\n\n",
		rep.MACOK, rep.ConfigOK, rep.Accepted)
}

func printAblations(geo *device.Geometry, appName string) {
	m := timing.NewModel(geo)
	fmt.Printf("== Ablation: frames per ICAP_config packet (§6.1 buffer ↔ messages trade-off, %s) ==\n", geo.Name)
	fmt.Printf("%8s %12s %10s %14s %14s\n", "frames", "buffer", "commands", "theoretical", "measured")
	for _, p := range m.BatchSweep([]int{1, 2, 4, 8, 16}) {
		fmt.Printf("%8d %10d B %10d %14s %14s\n",
			p.FramesPerPacket, p.BufferBytes, p.Commands, fmtDur(p.Theoretical), fmtDur(p.Measured))
	}
	fmt.Println()

	fmt.Println("== Ablation: device size sweep ==")
	fmt.Printf("%-12s %10s %14s %14s\n", "device", "frames", "theoretical", "measured")
	for _, g := range []*device.Geometry{device.SmallLX(), device.XC6VLX240T(), device.BigLX()} {
		tab := timing.NewModel(g).Table4()
		fmt.Printf("%-12s %10d %14s %14s\n", g.Name, g.NumFrames(), fmtDur(tab.Theoretical), fmtDur(tab.Measured))
	}
	fmt.Println()

	app, err := apps.ByName(appName)
	fatal(err)
	golden, dynFrames, err := core.BuildGolden(geo, app, 1, 0x5A5A)
	fatal(err)
	var words []uint32
	for _, idx := range dynFrames {
		words = append(words, golden.Frame(idx)...)
	}
	r := compress.Ratio(words)
	fmt.Printf("== Ablation: bitstream compression (paper ref [24], %s, app %s) ==\n", geo.Name, appName)
	fmt.Printf("partial bitstream: %d bytes raw, ratio %.5f (%.0f bytes compressed)\n\n",
		len(words)*4, r, float64(len(words)*4)*r)
}

func printSecurityMatrix(devName, appName string) {
	geo, err := device.ByName(devName)
	fatal(err)
	fmt.Printf("== §7.2 security evaluation: adversary matrix (device %s) ==\n", geo.Name)
	results, err := attack.All(func() (*core.System, error) {
		app, err := apps.ByName(appName)
		if err != nil {
			return nil, err
		}
		return core.NewSystem(core.Config{
			Geo:        geo,
			App:        app,
			KeyMode:    core.KeyStatPUF,
			DeviceID:   1,
			LabLatency: -1,
			Seed:       2,
		})
	})
	fatal(err)
	fmt.Printf("%-32s %-8s %-10s %s\n", "Adversary", "Class", "Detected", "Mechanism")
	for _, r := range results {
		fmt.Printf("%-32s %-8s %-10v %s\n", r.Name, r.Class, r.Detected, r.Mechanism)
	}
	fmt.Println()
}
