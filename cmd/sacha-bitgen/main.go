// Command sacha-bitgen builds golden bitstreams and Msk mask files for an
// intended application, the role the Xilinx toolchain plays in §6.1:
//
//	sacha-bitgen -device SmallLX -app blinker16 -nonce 7 \
//	             -golden golden.sbit -mask msk.sbit -partial dyn.sbit
//
// golden.sbit holds the full-device golden image, msk.sbit the register
// capture mask, and dyn.sbit the partial bitstream covering the dynamic
// partition (what the verifier transmits frame by frame).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sacha/internal/apps"
	"sacha/internal/bitstream"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/fabric"
)

func main() {
	devName := flag.String("device", "SmallLX", "device geometry")
	appName := flag.String("app", "blinker16", "intended application")
	buildID := flag.Uint64("build", 1, "static bitstream build ID")
	nonce := flag.Uint64("nonce", 1, "nonce value to embed")
	goldenPath := flag.String("golden", "", "write the full golden image here")
	maskPath := flag.String("mask", "", "write the Msk mask file here")
	partialPath := flag.String("partial", "", "write the dynamic partial bitstream here")
	flag.Parse()

	geo, err := device.ByName(*devName)
	fatal(err)
	app, err := apps.ByName(*appName)
	fatal(err)

	golden, dynFrames, err := core.BuildGolden(geo, app, *buildID, *nonce)
	fatal(err)

	wrote := false
	if *goldenPath != "" {
		fatal(writeFile(*goldenPath, bitstream.FullImage(golden)))
		fmt.Printf("golden image:      %s (%d frames, %d bytes of configuration)\n",
			*goldenPath, golden.NumFrames(), golden.NumFrames()*324)
		wrote = true
	}
	if *maskPath != "" {
		fatal(writeFile(*maskPath, bitstream.FullImage(fabric.GenerateMask(geo))))
		fmt.Printf("register mask:     %s\n", *maskPath)
		wrote = true
	}
	if *partialPath != "" {
		fatal(writeFile(*partialPath, bitstream.FromImage(golden, dynFrames)))
		fmt.Printf("partial bitstream: %s (%d dynamic frames, %d bytes)\n",
			*partialPath, len(dynFrames), len(dynFrames)*324)
		wrote = true
	}
	if !wrote {
		flag.Usage()
		os.Exit(2)
	}
}

func writeFile(path string, p *bitstream.Partial) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := p.WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	if err != nil {
		log.Fatal("sacha-bitgen: ", err)
	}
}
