// Command sacha-verifier drives one attestation against a TCP prover:
//
//	sacha-verifier -connect 127.0.0.1:4242 -device SmallLX -app blinker16 \
//	               -build 1 -key 000102…0f -nonce 42 -offset 137
//
// The -device, -build and -key values must match the prover's
// provisioning; -app selects the intended application configured into the
// dynamic partition.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"sacha/internal/apps"
	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/verifier"
)

func main() {
	connect := flag.String("connect", "127.0.0.1:4242", "prover address")
	devName := flag.String("device", "SmallLX", "device geometry")
	appName := flag.String("app", "blinker16", "intended application")
	buildID := flag.Uint64("build", 1, "static bitstream build ID")
	keyHex := flag.String("key", "000102030405060708090a0b0c0d0e0f", "enrolled MAC key (32 hex chars)")
	nonce := flag.Uint64("nonce", 0, "attestation nonce (0 = time-based)")
	offset := flag.Int("offset", 0, "readback order offset i")
	batch := flag.Int("batch", 1, "frames per configuration packet (1..4)")
	steps := flag.Uint("steps", 0, "CAPTURE extension: clock the application N cycles and attest its state")
	trace := flag.Bool("trace", false, "print the protocol trace")
	flag.Parse()

	geo, err := device.ByName(*devName)
	fatal(err)
	app, err := apps.ByName(*appName)
	fatal(err)
	var key [16]byte
	raw, err := hex.DecodeString(*keyHex)
	if err != nil || len(raw) != 16 {
		fatal(fmt.Errorf("key must be 32 hex characters"))
	}
	copy(key[:], raw)
	if *nonce == 0 {
		*nonce = uint64(time.Now().UnixNano())
	}

	golden, dynFrames, err := core.BuildGolden(geo, app, *buildID, *nonce)
	fatal(err)

	ep, err := channel.Dial(*connect)
	fatal(err)
	defer ep.Close()

	v := verifier.New(geo, key)
	opts := verifier.Options{
		Offset:      *offset,
		ConfigBatch: *batch,
		AppSteps:    uint32(*steps),
	}
	if *trace {
		opts.Trace = os.Stderr
	}
	start := time.Now()
	rep, err := v.Attest(ep, golden, dynFrames, opts)
	fatal(err)

	fmt.Printf("device:            %s\n", geo.Name)
	fmt.Printf("application:       %s\n", *appName)
	fmt.Printf("nonce:             %#x\n", *nonce)
	fmt.Printf("frames configured: %d\n", rep.FramesConfigured)
	fmt.Printf("frames read back:  %d\n", rep.FramesRead)
	fmt.Printf("H_Prv == H_Vrf:    %v\n", rep.MACOK)
	fmt.Printf("B_Prv == B_Vrf:    %v\n", rep.ConfigOK)
	fmt.Printf("wall time:         %v\n", time.Since(start).Round(time.Millisecond))
	if rep.Accepted {
		fmt.Println("verdict:           ACCEPTED — device attested")
	} else {
		fmt.Printf("verdict:           REJECTED (%d mismatching frames)\n", len(rep.Mismatches))
		os.Exit(1)
	}
}

func fatal(err error) {
	if err != nil {
		log.Fatal("sacha-verifier: ", err)
	}
}
