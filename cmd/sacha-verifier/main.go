// Command sacha-verifier drives attestations against TCP provers:
//
//	sacha-verifier -connect 127.0.0.1:4242 -device SmallLX -app blinker16 \
//	               -build 1 -key 000102…0f -nonce 42 -offset 137
//
// The -device, -build and -key values must match the prover's
// provisioning; -app selects the intended application configured into the
// dynamic partition.
//
// By default the verifier runs the fault-tolerant transport: every
// command is wrapped in an idempotent sequence envelope, responses are
// awaited up to -timeout and re-sent up to -retries times with
// exponential backoff from -backoff. -plain disables all of it and
// speaks the paper's bare lab protocol (then -timeout, if set, is
// enforced as a raw per-message socket deadline instead).
//
// -compress negotiates the run-length compressed wire transport per
// session (a Hello capability bit; provers without it transparently get
// the plain packets). -delta attests each prover twice: a full warm-up
// attestation establishes the delta admissibility precondition
// in-session, then the delta attestation scans the device and rewrites
// only the nonce-register frames — same verdict, same H_Vrf, a fraction
// of the configuration bytes.
//
// -connect accepts a comma-separated list of provers; they are attested
// through a worker pool of -concurrency connections. All targets share
// one precomputed attestation.Plan — the golden-image work (message
// encoding, mask generation, CAPTURE prediction) is paid once for the
// whole sweep, not per prover. The exit status reflects the whole sweep.
//
// -freshness picks the nonce freshness policy. The default, per-sweep,
// is the paper's protocol: one nonce challenges every prover in the
// sweep. per-device draws a fresh random nonce for each prover and
// patches the shared plan's nonce column per target (Plan.WithNonce), so
// cross-device freshness still costs one plan build. per-device cannot
// be combined with a pinned -nonce, and rotate-key is rejected here: PUF
// re-enrollment needs the in-process fleet (swarm.SweepConfig), not a
// TCP link.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"sacha/internal/apps"
	"sacha/internal/attestation"
	"sacha/internal/channel"
	"sacha/internal/cliutil"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/obs"
	"sacha/internal/obs/span"
)

type target struct {
	addr  string
	nonce uint64
	rep   *attestation.Report
	err   error
	wall  time.Duration
}

func main() {
	connect := flag.String("connect", "127.0.0.1:4242", "prover address(es), comma-separated")
	devName := flag.String("device", "SmallLX", "device geometry")
	appName := flag.String("app", "blinker16", "intended application")
	buildID := flag.Uint64("build", 1, "static bitstream build ID")
	keyHex := flag.String("key", "000102030405060708090a0b0c0d0e0f", "enrolled MAC key (32 hex chars)")
	nonce := flag.Uint64("nonce", 0, "attestation nonce (0 = time-based; per-sweep policy only)")
	freshness := flag.String("freshness", "per-sweep", "nonce freshness policy: per-sweep or per-device")
	offset := flag.Int("offset", 0, "readback order offset i")
	batch := flag.Int("batch", 1, "frames per configuration packet (1..4)")
	steps := flag.Uint("steps", 0, "CAPTURE extension: clock the application N cycles and attest its state")
	trace := flag.Bool("trace", false, "print the protocol trace")
	timeout := flag.Duration("timeout", 2*time.Second, "per-message response timeout")
	retries := flag.Int("retries", 5, "re-sends per message before giving up")
	backoff := flag.Duration("backoff", 20*time.Millisecond, "base retry backoff (doubles per retry)")
	plain := flag.Bool("plain", false, "disable the fault-tolerant transport (paper's bare protocol)")
	window := flag.Int("window", 1, "pipelined frames in flight per prover (1 = lockstep; needs the reliable transport)")
	compress := flag.Bool("compress", false, "negotiate the compressed wire transport (provers without the capability get the plain packets)")
	delta := flag.Bool("delta", false, "delta attestation: full warm-up attest per prover, then a scan-first attest that rewrites only the nonce frames")
	concurrency := flag.Int("concurrency", 4, "concurrent connections when attesting several provers")
	obsFlags := cliutil.RegisterObs(flag.CommandLine, "")
	flag.Parse()

	// SACHA_LOG / SACHA_LOG_FORMAT pick level and encoding; the endpoint
	// below serves the matching metric families live during the sweep,
	// plus the causal span trees at /debug/trace{,/perfetto}.
	var tracker *obs.SweepTracker
	var spans *span.Collector
	var extra []obs.Route
	if obsFlags.Enabled() {
		tracker = obs.NewSweepTracker()
		spans = span.NewCollector(0)
		extra = span.Routes(spans)
	}
	_, stopObs, err := obsFlags.Start("sacha-verifier", tracker, extra...)
	fatal(err)
	defer stopObs()

	geo, err := device.ByName(*devName)
	fatal(err)
	app, err := apps.ByName(*appName)
	fatal(err)
	var key [16]byte
	raw, err := hex.DecodeString(*keyHex)
	if err != nil || len(raw) != 16 {
		fatal(fmt.Errorf("key must be 32 hex characters"))
	}
	copy(key[:], raw)

	policy, err := attestation.ParseFreshnessPolicy(*freshness)
	fatal(err)
	if policy == attestation.RotateKey {
		fatal(fmt.Errorf("-freshness rotate-key needs PUF re-enrollment on the prover; it is only available to in-process fleets (swarm.SweepConfig), not a TCP verifier"))
	}
	noncePinned := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "nonce" {
			noncePinned = true
		}
	})
	if policy == attestation.PerDevice && noncePinned {
		fatal(fmt.Errorf("-nonce pins one nonce for every prover, which contradicts -freshness per-device; drop one of the two"))
	}
	if *nonce == 0 {
		*nonce = uint64(time.Now().UnixNano())
	}

	// The golden image carries the placed nonce register. Under
	// per-device freshness it is built at a reference nonce and the plan
	// is marked patchable: each worker below re-nonces its own copy with
	// Plan.WithNonce — O(nonce column), not another O(fabric) build.
	golden, dynFrames, err := core.BuildGolden(geo, app, *buildID, *nonce)
	fatal(err)

	// One plan for the whole sweep: the pre-encoded messages, the
	// validated readback order and the masked (or predicted) comparison
	// frames are shared read-only by every worker below.
	plan, err := attestation.NewPlan(attestation.Spec{
		Geo:            geo,
		Golden:         golden,
		DynFrames:      dynFrames,
		Offset:         *offset,
		AppSteps:       uint32(*steps),
		ConfigBatch:    *batch,
		Compress:       *compress,
		Delta:          *delta,
		PatchableNonce: policy == attestation.PerDevice,
		NonceBits:      core.NonceBits,
	})
	fatal(err)

	addrs := strings.Split(*connect, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	if tracker != nil {
		begin := make([]obs.SweepTarget, len(addrs))
		for i, addr := range addrs {
			begin[i] = obs.SweepTarget{Name: addr, Class: geo.Name}
		}
		tracker.Begin(begin)
	}
	// One root span covers the CLI sweep; session spans key on the
	// target's 1-based position (the addr itself is a tag).
	root := spans.StartTrace(span.NewTraceID(*nonce), "sweep")
	root.SetTag("targets", fmt.Sprint(len(addrs)))
	root.SetTag("freshness", policy.String())

	targets := make([]target, len(addrs))
	workers := *concurrency
	if workers < 1 {
		workers = 1
	}
	if workers > len(addrs) {
		workers = len(addrs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range jobs {
				opts := runOptions(key, *trace && len(addrs) == 1,
					*plain, *timeout, *retries, *backoff, *window)
				opts.Compress = *compress
				sp := root.DeviceChild(addrs[i], uint64(i)+1)
				sp.SetTag("addr", addrs[i])
				sp.SetTag("worker", fmt.Sprint(worker))
				opts.Span = sp
				targets[i] = attestOne(addrs[i], plan, *nonce, policy, *delta, tracker, worker, opts)
				sp.SetTag("verdict", verdictOf(targets[i]))
				sp.End()
			}
		}(w)
	}
	for i := range addrs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	root.End()

	fmt.Printf("device:            %s\n", geo.Name)
	fmt.Printf("application:       %s\n", *appName)
	fmt.Printf("freshness:         %s\n", policy)
	if policy == attestation.PerSweep {
		fmt.Printf("nonce:             %#x\n", *nonce)
	}
	allOK := true
	for _, tg := range targets {
		if len(addrs) > 1 {
			fmt.Printf("--- %s\n", tg.addr)
		}
		if policy == attestation.PerDevice {
			fmt.Printf("nonce:             %#x\n", tg.nonce)
		}
		if tg.err != nil {
			allOK = false
			if attestation.IsTransport(tg.err) {
				fmt.Printf("verdict:           UNREACHABLE — %v\n", tg.err)
			} else {
				fmt.Printf("verdict:           ERROR — %v\n", tg.err)
			}
			continue
		}
		rep := tg.rep
		fmt.Printf("frames configured: %d\n", rep.FramesConfigured)
		fmt.Printf("frames read back:  %d\n", rep.FramesRead)
		if rep.Compressed {
			fmt.Printf("transport:         compressed\n")
		}
		if rep.Delta.Enabled {
			if rep.Delta.Applied {
				fmt.Printf("delta:             applied — %d scanned, %d rewritten, %d skipped\n",
					rep.Delta.FramesScanned, rep.Delta.FramesRewritten, rep.Delta.FramesSkipped)
			} else {
				fmt.Printf("delta:             fell back to full overwrite (%s)\n", rep.Delta.Fallback)
			}
			if len(rep.Delta.Unexpected) > 0 {
				fmt.Printf("delta drift:       frames %v\n", rep.Delta.Unexpected)
			}
		}
		fmt.Printf("H_Prv == H_Vrf:    %v\n", rep.MACOK)
		fmt.Printf("B_Prv == B_Vrf:    %v\n", rep.ConfigOK)
		fmt.Printf("retries:           %d (%d transport faults)\n", rep.Retries, rep.TransportFaults)
		fmt.Printf("wall time:         %v\n", tg.wall.Round(time.Millisecond))
		fmt.Printf("phases:            config=%v readback=%v checksum=%v verdict=%v\n",
			rep.Phases.Config.Round(time.Microsecond), rep.Phases.Readback.Round(time.Microsecond),
			rep.Phases.Checksum.Round(time.Microsecond), rep.Phases.Verdict.Round(time.Microsecond))
		if rep.Accepted {
			fmt.Println("verdict:           ACCEPTED — device attested")
		} else {
			allOK = false
			fmt.Printf("verdict:           REJECTED (%d mismatching frames)\n", len(rep.Mismatches))
		}
	}
	obsFlags.LingerNow("sacha-verifier")
	if !allOK {
		os.Exit(1)
	}
}

func runOptions(key [16]byte, trace, plain bool, timeout time.Duration, retries int, backoff time.Duration, window int) attestation.RunOpts {
	opts := attestation.RunOpts{Key: key}
	if trace {
		opts.Trace = os.Stderr
	}
	if !plain {
		opts.Retry = attestation.RetryPolicy{
			Timeout:    timeout,
			MaxRetries: retries,
			Backoff:    backoff,
			MaxBackoff: 16 * backoff,
			Seed:       time.Now().UnixNano(),
			Window:     window,
		}
	} else if window > 1 {
		fatal(fmt.Errorf("-window needs the reliable transport; drop -plain"))
	}
	return opts
}

func attestOne(addr string, plan *attestation.Plan, nonce uint64, policy attestation.FreshnessPolicy, delta bool, tracker *obs.SweepTracker, worker int, opts attestation.RunOpts) target {
	tg := target{addr: addr, nonce: nonce}
	if tracker != nil {
		tracker.Start(addr)
		defer func() {
			// The CLI sweep is a single shared-plan engine: shard 0, with
			// the pool worker as the /debug/sweep attribution.
			out := obs.SweepOutcome{Verdict: verdictOf(tg), Elapsed: tg.wall, Shard: 0, Worker: worker}
			if tg.rep != nil {
				out.Retries = tg.rep.Retries
				out.TransportFaults = tg.rep.TransportFaults
			}
			if tg.err != nil {
				out.Err = tg.err.Error()
			}
			tracker.Done(addr, out)
		}()
	}
	if policy == attestation.PerDevice {
		// Fresh challenge for this prover only: patch the shared plan's
		// nonce column instead of rebuilding it.
		tg.nonce = rand.Uint64()
		patched, err := plan.WithNonce(tg.nonce)
		if err != nil {
			tg.err = err
			return tg
		}
		plan = patched
	}
	run := func(o attestation.RunOpts) (*attestation.Report, error) {
		ep, err := channel.Dial(addr)
		if err != nil {
			// A prover we cannot even dial is the canonical unreachable case —
			// type it like any other transport failure so the sweep reports
			// UNREACHABLE, not a generic error.
			return nil, &attestation.TransportError{Op: "dial " + addr, Attempts: 1, Err: err}
		}
		defer ep.Close()
		var link channel.Endpoint = ep
		if !o.Retry.Enabled() {
			// Plain mode has no retry layer; fall back to raw per-message
			// socket deadlines so a dead prover cannot hang the sweep.
			link = channel.NewDeadline(ep, 2*time.Second, 2*time.Second)
		}
		return plan.Run(link, o)
	}
	start := time.Now()
	if delta {
		// The one-shot CLI has no cross-invocation trust ledger, so the
		// §13 admissibility precondition is established in-session: a full
		// attestation over a first connection, then — only if it accepted —
		// the delta attestation over a second one.
		warm := opts
		warm.Delta, warm.DeltaWarm = false, false
		wrep, err := run(warm)
		if err != nil || !wrep.Accepted {
			tg.rep, tg.err = wrep, err
			tg.wall = time.Since(start)
			return tg
		}
		opts.Delta, opts.DeltaWarm = true, true
	}
	tg.rep, tg.err = run(opts)
	tg.wall = time.Since(start)
	return tg
}

// verdictOf maps one target's outcome onto the sweep verdict taxonomy.
func verdictOf(tg target) string {
	switch {
	case tg.err == nil && tg.rep != nil && tg.rep.Accepted:
		return obs.VerdictHealthy
	case tg.err == nil && tg.rep != nil:
		return obs.VerdictCompromised
	case attestation.IsTransport(tg.err):
		return obs.VerdictUnreachable
	default:
		return obs.VerdictFailed
	}
}

func fatal(err error) {
	if err != nil {
		log.Fatal("sacha-verifier: ", err)
	}
}
