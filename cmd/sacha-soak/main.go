// Command sacha-soak runs a seeded adversarial campaign over a
// mixed-geometry fleet (internal/campaign) and emits a machine-readable
// report:
//
//	sacha-soak -seed 7 -fleet 32 -duration 60s -report soak.json
//	sacha-soak -seed 7 -fleet 32 -events 120            # exact-replay bound
//	sacha-soak -scenario 'seed=7,fleet=32,events=40,weights=sweep:4;storm:2;attack:3;seu:2;kill:1'
//
// The campaign interleaves tampered and clean fleet sweeps under
// churning freshness policies, transport fault storms, every registered
// adversary, SEU/scrub cycles and mid-flight sweep kills, and asserts
// the three soak invariants (zero false verdicts, bounded memory,
// metrics consistent with the ledger). Exit status is 0 only when the
// campaign completes with zero invariant violations.
//
// An event-bounded run (-events) is exactly reproducible: rerunning the
// same seed and count yields an identical event hash and verdict
// matrix. A duration-bounded run reports how many events it executed;
// replay it with that count via -events.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"sacha/internal/campaign"
	"sacha/internal/obs/span"
)

func main() {
	seed := flag.Int64("seed", 1, "campaign seed (the event stream is a pure function of it)")
	fleet := flag.Int("fleet", campaign.DefaultFleet, "fleet size (odd IDs TinyLX, even SmallLX)")
	conc := flag.Int("concurrency", campaign.DefaultConcurrency, "sweep worker-pool size")
	duration := flag.Duration("duration", 0, "wall-time bound (0 = event-bounded only)")
	events := flag.Int("events", 0, "event-count bound, the exactly reproducible one (0 = duration-bounded only)")
	heapMB := flag.Int("heap-mb", campaign.DefaultHeapMB, "heap ceiling in MiB (bounded-memory invariant)")
	scenario := flag.String("scenario", "", "full scenario spec (overrides the individual flags); see campaign.ParseScenario")
	report := flag.String("report", "", "write the JSON report here (- for stdout)")
	flightDir := flag.String("flight-dir", "", "write a flight-recorder artifact (span tree + metrics delta) here for every invariant violation")
	quiet := flag.Bool("q", false, "suppress the human-readable summary")
	flag.Parse()

	var sc campaign.Scenario
	var err error
	if *scenario != "" {
		sc, err = campaign.ParseScenario(*scenario)
	} else {
		sc = campaign.Scenario{
			Seed:          *seed,
			Fleet:         *fleet,
			Concurrency:   *conc,
			MaxEvents:     *events,
			Duration:      *duration,
			HeapCeilingMB: *heapMB,
		}
		err = sc.Validate()
	}
	fatal(err)

	eng, err := campaign.New(sc)
	fatal(err)

	if *flightDir != "" {
		// Tampered→Compromised is the expected campaign outcome, so the
		// recorder arms on invariant violations only: each one snapshots
		// the surrounding sweep's span tree and the metrics movement.
		rec, err := span.NewRecorder(*flightDir, 0, nil)
		fatal(err)
		eng.AttachFlight(span.NewCollector(0), rec)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := eng.Run(ctx)
	fatal(err)

	if *report != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		fatal(err)
		blob = append(blob, '\n')
		if *report == "-" {
			_, err = os.Stdout.Write(blob)
		} else {
			err = os.WriteFile(*report, blob, 0o644)
		}
		fatal(err)
	}
	if !*quiet {
		fmt.Print(rep.Summary())
		if sc.MaxEvents == 0 {
			// The replay spelling must carry the whole scenario — weights,
			// heap ceiling, cache size — not just seed and fleet, or a run
			// with non-default knobs replays a different event stream.
			replay := sc.Normalized()
			replay.MaxEvents = rep.Events
			replay.Duration = 0
			fmt.Printf("  replay: sacha-soak -scenario '%s'\n", replay)
		}
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sacha-soak:", err)
		os.Exit(1)
	}
}
